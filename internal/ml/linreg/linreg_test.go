package linreg

import (
	"math"
	"testing"

	"beamdyn/internal/rng"
)

func TestRecoversExactLinearMap(t *testing.T) {
	// y0 = 2 + 3x0 - x1, y1 = -1 + 0.5x0 + 4x1
	src := rng.New(5)
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		x0, x1 := src.Float64()*10, src.Float64()*10
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, []float64{2 + 3*x0 - x1, -1 + 0.5*x0 + 4*x1})
	}
	var m Model
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 2)
	for q := 0; q < 50; q++ {
		x0, x1 := src.Float64()*10, src.Float64()*10
		m.Predict([]float64{x0, x1}, out)
		if math.Abs(out[0]-(2+3*x0-x1)) > 1e-6 {
			t.Fatalf("y0 prediction off: %g", out[0]-(2+3*x0-x1))
		}
		if math.Abs(out[1]-(-1+0.5*x0+4*x1)) > 1e-6 {
			t.Fatalf("y1 prediction off: %g", out[1]-(-1+0.5*x0+4*x1))
		}
	}
}

func TestLeastSquaresMinimisesResidual(t *testing.T) {
	// Noisy linear data: the fitted slope must be close to truth and the
	// residual below the noise floor times a constant.
	src := rng.New(11)
	var xs, ys [][]float64
	for i := 0; i < 2000; i++ {
		x := src.Float64() * 4
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{1 + 2*x + 0.1*src.Norm()})
	}
	var m Model
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	m.Predict([]float64{0}, out)
	intercept := out[0]
	m.Predict([]float64{1}, out)
	slope := out[0] - intercept
	if math.Abs(slope-2) > 0.02 || math.Abs(intercept-1) > 0.02 {
		t.Fatalf("fit slope=%g intercept=%g", slope, intercept)
	}
}

func TestRankDeficientDesignStillFits(t *testing.T) {
	// Duplicate column: the ridge term must keep Cholesky positive
	// definite.
	xs := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	ys := [][]float64{{2}, {4}, {6}, {8}}
	var m Model
	if err := m.Fit(xs, ys); err != nil {
		t.Fatalf("rank-deficient fit failed: %v", err)
	}
	out := make([]float64, 1)
	m.Predict([]float64{5, 5}, out)
	if math.Abs(out[0]-10) > 0.01 {
		t.Fatalf("prediction %g, want ~10", out[0])
	}
}

func TestFitErrors(t *testing.T) {
	var m Model
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must error")
	}
	if err := m.Fit([][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := m.Fit([][]float64{{1}, {1, 2}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("ragged design must error")
	}
	if m.Trained() {
		t.Fatal("failed fits must not mark model trained")
	}
}

func TestPredictPanicsUntrained(t *testing.T) {
	var m Model
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Fit did not panic")
		}
	}()
	m.Predict([]float64{1}, make([]float64, 1))
}

func TestRefitReplacesModel(t *testing.T) {
	var m Model
	xs := [][]float64{{0}, {1}, {2}}
	if err := m.Fit(xs, [][]float64{{0}, {1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(xs, [][]float64{{0}, {2}, {4}}); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	m.Predict([]float64{3}, out)
	if math.Abs(out[0]-6) > 1e-6 {
		t.Fatalf("refit prediction %g, want 6", out[0])
	}
}
