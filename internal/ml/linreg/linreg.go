// Package linreg implements multi-output ordinary least-squares linear
// regression solved through the normal equations with a Cholesky
// factorisation and Tikhonov damping for rank-deficient designs.
//
// The paper (Section III.B.1) reports that linear regression performs
// within noise of kNN for access-pattern forecasting; this package provides
// that alternative predictor for the ablation benchmarks.
package linreg

import (
	"fmt"
	"math"
)

// Model is a fitted linear map y ≈ W^T [1, x]. The zero value is an
// untrained model; Fit trains (and re-trains) it.
type Model struct {
	dim    int
	outDim int
	// w is (dim+1) x outDim, row 0 the intercept.
	w [][]float64
	// Ridge is the Tikhonov damping added to the Gram diagonal. Zero means
	// the default of 1e-9 * trace-scale, which only activates for
	// rank-deficient designs.
	Ridge float64
}

// Trained reports whether Fit has been called successfully.
func (m *Model) Trained() bool { return m.w != nil }

// Fit computes the least-squares weights for the examples (x[i], y[i]).
// All rows must share dimensions and len(x) must be at least dim+1 for a
// well-posed fit (fewer rows still fit through the ridge term).
func (m *Model) Fit(x, y [][]float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("linreg: %d inputs, %d outputs", len(x), len(y))
	}
	if len(x) == 0 {
		return fmt.Errorf("linreg: empty training set")
	}
	d := len(x[0])
	q := len(y[0])
	n := d + 1 // augmented with intercept column
	// Gram matrix A = X^T X and right-hand side B = X^T Y with the
	// augmented design matrix X = [1, x].
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, q)
	}
	xi := make([]float64, n)
	for r := range x {
		if len(x[r]) != d || len(y[r]) != q {
			return fmt.Errorf("linreg: ragged training matrix at row %d", r)
		}
		xi[0] = 1
		copy(xi[1:], x[r])
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				a[i][j] += xi[i] * xi[j]
			}
			for c := 0; c < q; c++ {
				b[i][c] += xi[i] * y[r][c]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	ridge := m.Ridge
	if ridge == 0 {
		var tr float64
		for i := 0; i < n; i++ {
			tr += a[i][i]
		}
		ridge = 1e-9 * (tr/float64(n) + 1)
	}
	for i := 0; i < n; i++ {
		a[i][i] += ridge
	}
	l, err := cholesky(a)
	if err != nil {
		return err
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, q)
	}
	// Solve L L^T W = B column by column.
	for c := 0; c < q; c++ {
		// forward substitution: L z = b
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			s := b[i][c]
			for k := 0; k < i; k++ {
				s -= l[i][k] * z[k]
			}
			z[i] = s / l[i][i]
		}
		// back substitution: L^T w = z
		for i := n - 1; i >= 0; i-- {
			s := z[i]
			for k := i + 1; k < n; k++ {
				s -= l[k][i] * w[k][c]
			}
			w[i][c] = s / l[i][i]
		}
	}
	m.dim, m.outDim, m.w = d, q, w
	return nil
}

// cholesky returns the lower-triangular factor of the symmetric positive
// definite matrix a.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linreg: matrix not positive definite at %d", i)
				}
				l[i][j] = math.Sqrt(s)
			} else {
				l[i][j] = s / l[j][j]
			}
		}
	}
	return l, nil
}

// Predict writes W^T [1, x] into out, which must have the trained output
// dimension.
func (m *Model) Predict(x []float64, out []float64) {
	if m.w == nil {
		panic("linreg: Predict before Fit")
	}
	if len(x) != m.dim {
		panic(fmt.Sprintf("linreg: query dim %d, trained %d", len(x), m.dim))
	}
	if len(out) != m.outDim {
		panic(fmt.Sprintf("linreg: out dim %d, trained %d", len(out), m.outDim))
	}
	for c := 0; c < m.outDim; c++ {
		out[c] = m.w[0][c]
	}
	for i, xi := range x {
		row := m.w[i+1]
		for c := 0; c < m.outDim; c++ {
			out[c] += xi * row[c]
		}
	}
}

// OutDim returns the trained output dimension (0 before Fit).
func (m *Model) OutDim() int { return m.outDim }
