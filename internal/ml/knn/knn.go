// Package knn implements k-nearest-neighbour regression over low-dimensional
// inputs with multi-dimensional outputs, backed by a kd-tree.
//
// This is the paper's prediction model of choice (Section III.B.1): at time
// step k the regressor is fitted on the access patterns observed during step
// k (online replace-training) and queried at step k+1 to forecast the
// pattern at each grid point. Inputs are grid-point coordinates (x, y, t);
// outputs are access-pattern vectors.
package knn

import (
	"fmt"
	"math"
	"sort"
)

// Regressor is a kNN regressor. The zero value is unusable; construct with
// New. Fit replaces the training set, implementing the paper's online
// scheme where g_k is learned from the patterns observed during step k.
type Regressor struct {
	k      int
	dim    int
	outDim int
	pts    []point
	root   *node
}

type point struct {
	x []float64
	y []float64
}

type node struct {
	idx         int // index into pts of the splitting point
	axis        int
	left, right *node
}

// New returns a regressor averaging over the k nearest neighbours. k must
// be positive.
func New(k int) *Regressor {
	if k < 1 {
		panic("knn: k must be positive")
	}
	return &Regressor{k: k}
}

// K returns the neighbour count.
func (r *Regressor) K() int { return r.k }

// Trained reports whether the regressor holds a training set.
func (r *Regressor) Trained() bool { return r.root != nil }

// Len returns the number of training examples.
func (r *Regressor) Len() int { return len(r.pts) }

// Fit replaces the training set with the given examples and rebuilds the
// kd-tree. X and Y must be the same length; all rows of X (and of Y) must
// share a dimension. The slices are copied, so callers may reuse their
// buffers.
func (r *Regressor) Fit(x, y [][]float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("knn: %d inputs, %d outputs", len(x), len(y)))
	}
	if len(x) == 0 {
		r.pts, r.root = nil, nil
		return
	}
	r.dim = len(x[0])
	r.outDim = len(y[0])
	r.pts = make([]point, len(x))
	for i := range x {
		if len(x[i]) != r.dim {
			panic("knn: ragged input matrix")
		}
		if len(y[i]) != r.outDim {
			panic("knn: ragged output matrix")
		}
		xi := make([]float64, r.dim)
		copy(xi, x[i])
		yi := make([]float64, r.outDim)
		copy(yi, y[i])
		r.pts[i] = point{x: xi, y: yi}
	}
	order := make([]int, len(r.pts))
	for i := range order {
		order[i] = i
	}
	r.root = r.build(order, 0)
}

// build constructs a balanced kd-tree by median splitting.
func (r *Regressor) build(order []int, depth int) *node {
	if len(order) == 0 {
		return nil
	}
	axis := depth % r.dim
	sort.Slice(order, func(i, j int) bool {
		return r.pts[order[i]].x[axis] < r.pts[order[j]].x[axis]
	})
	mid := len(order) / 2
	n := &node{idx: order[mid], axis: axis}
	n.left = r.build(order[:mid], depth+1)
	n.right = r.build(order[mid+1:], depth+1)
	return n
}

// neighbour is an entry of the bounded max-heap used during search.
type neighbour struct {
	idx int
	d2  float64
}

type maxHeap []neighbour

func (h maxHeap) worst() float64 { return h[0].d2 }

func (h *maxHeap) push(n neighbour, cap int) {
	if len(*h) < cap {
		*h = append(*h, n)
		// sift up
		i := len(*h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if (*h)[p].d2 >= (*h)[i].d2 {
				break
			}
			(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
			i = p
		}
		return
	}
	if n.d2 >= (*h)[0].d2 {
		return
	}
	(*h)[0] = n
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(*h) && (*h)[l].d2 > (*h)[big].d2 {
			big = l
		}
		if r < len(*h) && (*h)[r].d2 > (*h)[big].d2 {
			big = r
		}
		if big == i {
			return
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
}

func dist2(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// Neighbors returns the indices of the k nearest training points to x in
// ascending distance order, and their squared distances.
func (r *Regressor) Neighbors(x []float64) (idx []int, d2 []float64) {
	if r.root == nil {
		return nil, nil
	}
	if len(x) != r.dim {
		panic(fmt.Sprintf("knn: query dim %d, trained dim %d", len(x), r.dim))
	}
	h := make(maxHeap, 0, r.k)
	r.search(r.root, x, &h)
	res := make([]neighbour, len(h))
	copy(res, h)
	sort.Slice(res, func(i, j int) bool { return res[i].d2 < res[j].d2 })
	idx = make([]int, len(res))
	d2 = make([]float64, len(res))
	for i, n := range res {
		idx[i] = n.idx
		d2[i] = n.d2
	}
	return idx, d2
}

func (r *Regressor) search(n *node, x []float64, h *maxHeap) {
	if n == nil {
		return
	}
	p := r.pts[n.idx]
	h.push(neighbour{idx: n.idx, d2: dist2(x, p.x)}, r.k)
	delta := x[n.axis] - p.x[n.axis]
	near, far := n.left, n.right
	if delta > 0 {
		near, far = far, near
	}
	r.search(near, x, h)
	if len(*h) < r.k || delta*delta < h.worst() {
		r.search(far, x, h)
	}
}

// Predict writes the mean output of the k nearest neighbours of x into out,
// which must have the trained output dimension. It panics when the model
// has not been fitted; callers are expected to fall back to full adaptive
// quadrature on the first step, as Algorithm 1 does.
func (r *Regressor) Predict(x []float64, out []float64) {
	if r.root == nil {
		panic("knn: Predict before Fit")
	}
	if len(out) != r.outDim {
		panic(fmt.Sprintf("knn: out dim %d, trained %d", len(out), r.outDim))
	}
	idx, _ := r.Neighbors(x)
	for i := range out {
		out[i] = 0
	}
	for _, j := range idx {
		for c, v := range r.pts[j].y {
			out[c] += v
		}
	}
	inv := 1 / float64(len(idx))
	for i := range out {
		out[i] *= inv
	}
}

// PredictWeighted writes the inverse-distance-weighted mean of the k
// nearest neighbours into out. Exact matches dominate through a small
// distance floor, so a query at a training point reproduces its label.
func (r *Regressor) PredictWeighted(x []float64, out []float64) {
	if r.root == nil {
		panic("knn: PredictWeighted before Fit")
	}
	if len(out) != r.outDim {
		panic(fmt.Sprintf("knn: out dim %d, trained %d", len(out), r.outDim))
	}
	idx, d2 := r.Neighbors(x)
	for i := range out {
		out[i] = 0
	}
	var wsum float64
	for i, j := range idx {
		w := 1 / math.Sqrt(d2[i]+1e-24)
		wsum += w
		for c, v := range r.pts[j].y {
			out[c] += w * v
		}
	}
	inv := 1 / wsum
	for i := range out {
		out[i] *= inv
	}
}

// OutDim returns the trained output dimension (0 before Fit).
func (r *Regressor) OutDim() int { return r.outDim }
