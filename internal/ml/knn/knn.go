// Package knn implements k-nearest-neighbour regression over low-dimensional
// inputs with multi-dimensional outputs, backed by a kd-tree.
//
// This is the paper's prediction model of choice (Section III.B.1): at time
// step k the regressor is fitted on the access patterns observed during step
// k (online replace-training) and queried at step k+1 to forecast the
// pattern at each grid point. Inputs are grid-point coordinates (x, y, t);
// outputs are access-pattern vectors.
//
// The implementation is built for the kernel's hot loop: training data
// lives in two flat backing arrays reused across Fit calls, the kd-tree is
// a flat preorder index array (no per-node allocation, subtrees occupy
// disjoint contiguous ranges so construction parallelises without
// changing the result), and Searcher carries the per-query heap and
// result buffers so steady-state forecasting allocates nothing. A fitted
// Regressor is safe for concurrent queries; give each goroutine its own
// Searcher.
package knn

import (
	"fmt"
	"math"
	"sync"

	"beamdyn/internal/hostpar"
)

// Regressor is a kNN regressor. The zero value is unusable; construct with
// New. Fit replaces the training set, implementing the paper's online
// scheme where g_k is learned from the patterns observed during step k.
type Regressor struct {
	k      int
	dim    int
	outDim int
	n      int

	// xs and ys are the flat row-major training matrices (n*dim and
	// n*outDim); both are reused across Fit calls.
	xs, ys []float64

	// tree is the kd-tree in subtree-contiguous preorder: tree[base] is
	// the point index of the splitting node of a subtree of size s, its
	// left child subtree (size s/2) occupies tree[base+1:], the right the
	// remainder. Child positions and split axes (depth mod dim) are
	// derived during descent, so one int32 per node is the whole tree.
	tree []int32

	// workers bounds the goroutines Fit uses to build the tree (0 means
	// GOMAXPROCS). The tree is identical for every value.
	workers int

	// order is the build-time permutation scratch.
	order []int32
}

// New returns a regressor averaging over the k nearest neighbours. k must
// be positive.
func New(k int) *Regressor {
	if k < 1 {
		panic("knn: k must be positive")
	}
	return &Regressor{k: k}
}

// K returns the neighbour count.
func (r *Regressor) K() int { return r.k }

// Trained reports whether the regressor holds a training set.
func (r *Regressor) Trained() bool { return r.n > 0 }

// Len returns the number of training examples.
func (r *Regressor) Len() int { return r.n }

// SetHostWorkers bounds the worker goroutines Fit uses to copy the
// training set and build the kd-tree (values below 1 mean GOMAXPROCS).
// The fitted model is bitwise identical for every value.
func (r *Regressor) SetHostWorkers(workers int) { r.workers = workers }

// parallelBuildCutoff is the subtree size below which Fit stops forking:
// small subtrees sort faster than a goroutine handoff costs.
const parallelBuildCutoff = 2048

// Fit replaces the training set with the given examples and rebuilds the
// kd-tree. X and Y must be the same length; all rows of X (and of Y) must
// share a dimension. The rows are copied into backing arrays reused
// across calls, so callers may reuse their buffers and steady-state
// refits allocate nothing.
func (r *Regressor) Fit(x, y [][]float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("knn: %d inputs, %d outputs", len(x), len(y)))
	}
	if len(x) == 0 {
		r.n = 0
		r.tree = r.tree[:0]
		return
	}
	r.dim = len(x[0])
	r.outDim = len(y[0])
	r.n = len(x)
	for i := range x {
		if len(x[i]) != r.dim {
			panic("knn: ragged input matrix")
		}
		if len(y[i]) != r.outDim {
			panic("knn: ragged output matrix")
		}
	}
	r.xs = hostpar.Resize(r.xs, r.n*r.dim)
	r.ys = hostpar.Resize(r.ys, r.n*r.outDim)
	r.order = hostpar.Resize(r.order, r.n)
	r.tree = hostpar.Resize(r.tree, r.n)
	workers := hostpar.Workers(r.workers)
	hostpar.For(r.n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(r.xs[i*r.dim:(i+1)*r.dim], x[i])
			copy(r.ys[i*r.outDim:(i+1)*r.outDim], y[i])
			r.order[i] = int32(i)
		}
	})
	// forkDepth bounds concurrent recursion to about one goroutine per
	// worker; the subtree layout is position-determined, so forking does
	// not change the tree.
	forkDepth := 0
	for 1<<forkDepth < workers {
		forkDepth++
	}
	var wg sync.WaitGroup
	r.build(r.order, 0, 0, forkDepth, &wg)
	wg.Wait()
}

// build writes the kd-tree of the points listed in order into
// r.tree[base:base+len(order)] by median splitting. Subtrees occupy
// disjoint ranges of both order and tree, so the recursion can fork
// freely: fork levels spawn the left child on its own goroutine.
func (r *Regressor) build(order []int32, base, depth, fork int, wg *sync.WaitGroup) {
	for len(order) > 0 {
		axis := depth % r.dim
		mid := len(order) / 2
		r.selectNth(order, axis, mid)
		r.tree[base] = order[mid]
		left, right := order[:mid], order[mid+1:]
		if fork > 0 && len(order) >= parallelBuildCutoff {
			wg.Add(1)
			go func(o []int32, b, d, f int) {
				defer wg.Done()
				r.build(o, b, d, f, wg)
			}(left, base+1, depth+1, fork-1)
		} else {
			r.build(left, base+1, depth+1, 0, wg)
		}
		// Tail recursion on the right child.
		order, base, depth, fork = right, base+1+mid, depth+1, fork-1
		if fork < 0 {
			fork = 0
		}
	}
}

// selectNth partially orders order so that order[n] holds the element a
// full sort by the axis coordinate would place there, every element
// before it compares <= and every element after >= (the kd-tree split
// invariant). Deterministic sequential quickselect with median-of-three
// pivots — no allocation, unlike sort.Slice, which matters because build
// selects once per tree node.
func (r *Regressor) selectNth(order []int32, axis, n int) {
	lo, hi := 0, len(order) // half-open
	for hi-lo > 1 {
		p := r.partition(order, lo, hi, axis)
		switch {
		case n < p:
			hi = p
		case n > p:
			lo = p + 1
		default:
			return
		}
	}
}

// partition performs a Lomuto partition of order[lo:hi) around a
// median-of-three pivot, returning the pivot's final position.
func (r *Regressor) partition(order []int32, lo, hi, axis int) int {
	xs, dim := r.xs, r.dim
	mid := lo + (hi-lo)/2
	if xs[int(order[mid])*dim+axis] < xs[int(order[lo])*dim+axis] {
		order[mid], order[lo] = order[lo], order[mid]
	}
	if xs[int(order[hi-1])*dim+axis] < xs[int(order[lo])*dim+axis] {
		order[hi-1], order[lo] = order[lo], order[hi-1]
	}
	if xs[int(order[hi-1])*dim+axis] < xs[int(order[mid])*dim+axis] {
		order[hi-1], order[mid] = order[mid], order[hi-1]
	}
	order[mid], order[hi-1] = order[hi-1], order[mid]
	pk := xs[int(order[hi-1])*dim+axis]
	i := lo
	for j := lo; j < hi-1; j++ {
		if xs[int(order[j])*dim+axis] < pk {
			order[i], order[j] = order[j], order[i]
			i++
		}
	}
	order[i], order[hi-1] = order[hi-1], order[i]
	return i
}

// x returns training input row i.
func (r *Regressor) x(i int32) []float64 { return r.xs[int(i)*r.dim : (int(i)+1)*r.dim] }

// y returns training output row i.
func (r *Regressor) y(i int32) []float64 { return r.ys[int(i)*r.outDim : (int(i)+1)*r.outDim] }

// neighbour is an entry of the bounded max-heap used during search.
type neighbour struct {
	idx int32
	d2  float64
}

type maxHeap []neighbour

func (h maxHeap) worst() float64 { return h[0].d2 }

func (h *maxHeap) push(n neighbour, cap int) {
	if len(*h) < cap {
		*h = append(*h, n)
		// sift up
		i := len(*h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if (*h)[p].d2 >= (*h)[i].d2 {
				break
			}
			(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
			i = p
		}
		return
	}
	if n.d2 >= (*h)[0].d2 {
		return
	}
	(*h)[0] = n
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(*h) && (*h)[l].d2 > (*h)[big].d2 {
			big = l
		}
		if r < len(*h) && (*h)[r].d2 > (*h)[big].d2 {
			big = r
		}
		if big == i {
			return
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
}

func dist2(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// Searcher carries the per-query scratch (neighbour heap, sorted result
// buffers) of one querying goroutine. Queries through a Searcher allocate
// nothing in steady state; the backing Regressor may be refitted between
// queries. A Searcher is not safe for concurrent use — give each
// goroutine its own.
type Searcher struct {
	r   *Regressor
	h   maxHeap
	res []neighbour
	idx []int
	d2  []float64
}

// NewSearcher returns a reusable query context over r.
func (r *Regressor) NewSearcher() *Searcher { return &Searcher{r: r} }

// For returns the Regressor this Searcher queries.
func (s *Searcher) For() *Regressor { return s.r }

// search collects the k nearest training points to x into s.h, sorted
// ascending into s.res.
func (s *Searcher) search(x []float64) {
	r := s.r
	if len(x) != r.dim {
		panic(fmt.Sprintf("knn: query dim %d, trained dim %d", len(x), r.dim))
	}
	s.h = s.h[:0]
	s.descend(0, r.n, 0, x)
	s.res = append(s.res[:0], s.h...)
	// Insertion sort ascending by distance (k is small), ties broken by
	// index so the ordering is canonical; sort.Slice would allocate on
	// every query.
	for i := 1; i < len(s.res); i++ {
		n := s.res[i]
		j := i - 1
		for j >= 0 && (s.res[j].d2 > n.d2 || (s.res[j].d2 == n.d2 && s.res[j].idx > n.idx)) {
			s.res[j+1] = s.res[j]
			j--
		}
		s.res[j+1] = n
	}
}

// descend walks the subtree of size occupying r.tree[base:base+size].
func (s *Searcher) descend(base, size, depth int, x []float64) {
	if size <= 0 {
		return
	}
	r := s.r
	mid := size / 2
	pi := r.tree[base]
	px := r.x(pi)
	s.h.push(neighbour{idx: pi, d2: dist2(x, px)}, r.k)
	axis := depth % r.dim
	delta := x[axis] - px[axis]
	// Subtree layout: left child at base+1 (size mid), right child at
	// base+1+mid (size size-mid-1).
	nearB, nearS, farB, farS := base+1, mid, base+1+mid, size-mid-1
	if delta > 0 {
		nearB, nearS, farB, farS = farB, farS, nearB, nearS
	}
	s.descend(nearB, nearS, depth+1, x)
	if len(s.h) < r.k || delta*delta < s.h.worst() {
		s.descend(farB, farS, depth+1, x)
	}
}

// Neighbors returns the indices of the k nearest training points to x in
// ascending distance order, and their squared distances. The returned
// slices are owned by the Searcher and valid until its next query.
func (s *Searcher) Neighbors(x []float64) (idx []int, d2 []float64) {
	if !s.r.Trained() {
		return nil, nil
	}
	s.search(x)
	s.idx = hostpar.Resize(s.idx, len(s.res))
	s.d2 = hostpar.Resize(s.d2, len(s.res))
	for i, n := range s.res {
		s.idx[i] = int(n.idx)
		s.d2[i] = n.d2
	}
	return s.idx, s.d2
}

// Predict writes the mean output of the k nearest neighbours of x into
// out, which must have the trained output dimension. It panics when the
// model has not been fitted; callers are expected to fall back to full
// adaptive quadrature on the first step, as Algorithm 1 does.
func (s *Searcher) Predict(x, out []float64) {
	r := s.r
	if !r.Trained() {
		panic("knn: Predict before Fit")
	}
	if len(out) != r.outDim {
		panic(fmt.Sprintf("knn: out dim %d, trained %d", len(out), r.outDim))
	}
	s.search(x)
	for i := range out {
		out[i] = 0
	}
	for _, n := range s.res {
		for c, v := range r.y(n.idx) {
			out[c] += v
		}
	}
	inv := 1 / float64(len(s.res))
	for i := range out {
		out[i] *= inv
	}
}

// PredictWeighted writes the inverse-distance-weighted mean of the k
// nearest neighbours into out. Exact matches dominate through a small
// distance floor, so a query at a training point reproduces its label.
func (s *Searcher) PredictWeighted(x, out []float64) {
	r := s.r
	if !r.Trained() {
		panic("knn: PredictWeighted before Fit")
	}
	if len(out) != r.outDim {
		panic(fmt.Sprintf("knn: out dim %d, trained %d", len(out), r.outDim))
	}
	s.search(x)
	for i := range out {
		out[i] = 0
	}
	var wsum float64
	for _, n := range s.res {
		w := 1 / math.Sqrt(n.d2+1e-24)
		wsum += w
		for c, v := range r.y(n.idx) {
			out[c] += w * v
		}
	}
	inv := 1 / wsum
	for i := range out {
		out[i] *= inv
	}
}

// Neighbors returns the indices of the k nearest training points to x in
// ascending distance order, and their squared distances. One-shot
// convenience over a fresh Searcher; hot loops should hold a Searcher.
func (r *Regressor) Neighbors(x []float64) (idx []int, d2 []float64) {
	if !r.Trained() {
		return nil, nil
	}
	s := Searcher{r: r}
	i, d := s.Neighbors(x)
	// The one-shot variant hands ownership to the caller.
	return append([]int(nil), i...), append([]float64(nil), d...)
}

// Predict writes the mean output of the k nearest neighbours of x into
// out. One-shot convenience over a fresh Searcher.
func (r *Regressor) Predict(x, out []float64) {
	s := Searcher{r: r}
	s.Predict(x, out)
}

// PredictWeighted writes the inverse-distance-weighted mean of the k
// nearest neighbours into out. One-shot convenience over a fresh
// Searcher.
func (r *Regressor) PredictWeighted(x, out []float64) {
	s := Searcher{r: r}
	s.PredictWeighted(x, out)
}

// OutDim returns the trained output dimension (0 before Fit).
func (r *Regressor) OutDim() int {
	if r.n == 0 {
		return 0
	}
	return r.outDim
}
