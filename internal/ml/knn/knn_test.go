package knn

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"beamdyn/internal/rng"
)

func TestExactNeighborRecovery(t *testing.T) {
	// Query at a training point with k=1 must return that point's label.
	x := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}
	y := [][]float64{{1}, {2}, {3}, {4}, {5}}
	r := New(1)
	r.Fit(x, y)
	out := make([]float64, 1)
	for i := range x {
		r.Predict(x[i], out)
		if out[0] != y[i][0] {
			t.Fatalf("query at training point %d gave %g, want %g", i, out[0], y[i][0])
		}
	}
}

func TestNeighborsMatchBruteForce(t *testing.T) {
	src := rng.New(9)
	const n, k = 500, 7
	x := make([][]float64, n)
	y := make([][]float64, n)
	for i := range x {
		x[i] = []float64{src.Float64(), src.Float64(), src.Float64()}
		y[i] = []float64{float64(i)}
	}
	r := New(k)
	r.Fit(x, y)
	for q := 0; q < 50; q++ {
		query := []float64{src.Float64(), src.Float64(), src.Float64()}
		idx, d2 := r.Neighbors(query)
		if len(idx) != k {
			t.Fatalf("got %d neighbours, want %d", len(idx), k)
		}
		// Brute force reference.
		type nd struct {
			i int
			d float64
		}
		all := make([]nd, n)
		for i := range x {
			var d float64
			for j := range query {
				diff := x[i][j] - query[j]
				d += diff * diff
			}
			all[i] = nd{i, d}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		for i := 0; i < k; i++ {
			if math.Abs(d2[i]-all[i].d) > 1e-12 {
				t.Fatalf("neighbour %d distance %g, brute force %g", i, d2[i], all[i].d)
			}
		}
	}
}

func TestPredictAveragesNeighbors(t *testing.T) {
	// Four symmetric training points around the query: the k=4 mean is the
	// label average.
	x := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	y := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	r := New(4)
	r.Fit(x, y)
	out := make([]float64, 2)
	r.Predict([]float64{0, 0}, out)
	if math.Abs(out[0]-2.5) > 1e-12 || math.Abs(out[1]-25) > 1e-12 {
		t.Fatalf("mean prediction %v", out)
	}
}

func TestPredictWeightedPrefersCloser(t *testing.T) {
	x := [][]float64{{0, 0}, {10, 0}}
	y := [][]float64{{1}, {100}}
	r := New(2)
	r.Fit(x, y)
	out := make([]float64, 1)
	r.PredictWeighted([]float64{0.1, 0}, out)
	if out[0] > 10 {
		t.Fatalf("weighted prediction %g ignores proximity", out[0])
	}
	// At a training point the weighting must essentially reproduce it.
	r.PredictWeighted([]float64{0, 0}, out)
	if math.Abs(out[0]-1) > 1e-6 {
		t.Fatalf("weighted prediction at training point = %g", out[0])
	}
}

func TestSmoothFunctionRegression(t *testing.T) {
	// kNN regression of a smooth 2-D function on a grid must interpolate
	// to within the local variation.
	f := func(x, y float64) float64 { return math.Sin(3*x) + math.Cos(2*y) }
	var xs, ys [][]float64
	for i := 0; i <= 40; i++ {
		for j := 0; j <= 40; j++ {
			x, y := float64(i)/40, float64(j)/40
			xs = append(xs, []float64{x, y})
			ys = append(ys, []float64{f(x, y)})
		}
	}
	r := New(4)
	r.Fit(xs, ys)
	src := rng.New(4)
	out := make([]float64, 1)
	for q := 0; q < 200; q++ {
		x, y := src.Float64(), src.Float64()
		r.Predict([]float64{x, y}, out)
		if math.Abs(out[0]-f(x, y)) > 0.05 {
			t.Fatalf("prediction at (%g,%g): %g vs %g", x, y, out[0], f(x, y))
		}
	}
}

func TestFitReplacesTrainingSet(t *testing.T) {
	r := New(1)
	r.Fit([][]float64{{0}}, [][]float64{{1}})
	r.Fit([][]float64{{0}}, [][]float64{{2}})
	out := make([]float64, 1)
	r.Predict([]float64{0}, out)
	if out[0] != 2 {
		t.Fatalf("stale training data: got %g", out[0])
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestFitEmptyClears(t *testing.T) {
	r := New(2)
	r.Fit([][]float64{{0}, {1}}, [][]float64{{1}, {2}})
	r.Fit(nil, nil)
	if r.Trained() {
		t.Fatal("empty Fit left model trained")
	}
}

func TestKSmallerThanTrainingSet(t *testing.T) {
	r := New(10)
	r.Fit([][]float64{{0}, {1}, {2}}, [][]float64{{1}, {2}, {3}})
	idx, _ := r.Neighbors([]float64{0})
	if len(idx) != 3 {
		t.Fatalf("got %d neighbours from a 3-point set", len(idx))
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	cases := []func(){
		func() { New(0) },
		func() { New(1).Predict([]float64{0}, make([]float64, 1)) },
		func() {
			r := New(1)
			r.Fit([][]float64{{0, 0}}, [][]float64{{1}})
			r.Predict([]float64{0}, make([]float64, 1)) // wrong dim
		},
		func() {
			r := New(1)
			r.Fit([][]float64{{0}}, [][]float64{{1}})
			r.Predict([]float64{0}, make([]float64, 2)) // wrong out dim
		},
		func() { New(1).Fit([][]float64{{0}}, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNeighborsPropertySortedDistances(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		n := 20 + src.Intn(100)
		x := make([][]float64, n)
		y := make([][]float64, n)
		for i := range x {
			x[i] = []float64{src.Float64(), src.Float64()}
			y[i] = []float64{src.Float64()}
		}
		r := New(5)
		r.Fit(x, y)
		_, d2 := r.Neighbors([]float64{src.Float64(), src.Float64()})
		return sort.Float64sAreSorted(d2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A Searcher must reproduce the one-shot query results exactly while
// reusing its buffers.
func TestSearcherMatchesOneShot(t *testing.T) {
	src := rng.New(11)
	const n, k = 800, 5
	x := make([][]float64, n)
	y := make([][]float64, n)
	for i := range x {
		x[i] = []float64{src.Float64(), src.Float64()}
		y[i] = []float64{src.Float64(), src.Float64() * 3}
	}
	r := New(k)
	r.Fit(x, y)
	s := r.NewSearcher()
	if s.For() != r {
		t.Fatal("Searcher.For")
	}
	out := make([]float64, 2)
	sout := make([]float64, 2)
	for q := 0; q < 100; q++ {
		query := []float64{src.Float64(), src.Float64()}
		idx, d2 := r.Neighbors(query)
		sidx, sd2 := s.Neighbors(query)
		if len(idx) != len(sidx) {
			t.Fatalf("lengths differ: %d vs %d", len(idx), len(sidx))
		}
		for i := range idx {
			if idx[i] != sidx[i] || d2[i] != sd2[i] {
				t.Fatalf("neighbour %d differs: (%d,%g) vs (%d,%g)", i, idx[i], d2[i], sidx[i], sd2[i])
			}
		}
		r.PredictWeighted(query, out)
		s.PredictWeighted(query, sout)
		if out[0] != sout[0] || out[1] != sout[1] {
			t.Fatalf("weighted prediction differs: %v vs %v", out, sout)
		}
		r.Predict(query, out)
		s.Predict(query, sout)
		if out[0] != sout[0] || out[1] != sout[1] {
			t.Fatalf("mean prediction differs: %v vs %v", out, sout)
		}
	}
}

// The kd-tree (and hence every query result) must be bitwise identical
// for any Fit worker count — the determinism guarantee of the parallel
// host pipeline.
func TestParallelFitDeterministic(t *testing.T) {
	src := rng.New(23)
	const n = 6000 // above parallelBuildCutoff so forking really happens
	x := make([][]float64, n)
	y := make([][]float64, n)
	for i := range x {
		x[i] = []float64{src.Float64(), src.Float64()}
		y[i] = []float64{src.Float64()}
	}
	ref := New(4)
	ref.SetHostWorkers(1)
	ref.Fit(x, y)
	refTree := append([]int32(nil), ref.tree...)
	for _, w := range []int{2, 3, 8} {
		r := New(4)
		r.SetHostWorkers(w)
		r.Fit(x, y)
		if len(r.tree) != len(refTree) {
			t.Fatalf("workers=%d: tree size %d vs %d", w, len(r.tree), len(refTree))
		}
		for i := range refTree {
			if r.tree[i] != refTree[i] {
				t.Fatalf("workers=%d: tree node %d differs (%d vs %d)", w, i, r.tree[i], refTree[i])
			}
		}
	}
}

// Steady-state refits and Searcher queries must not allocate: the
// ONLINE-LEARNING and PREDICT stages run every simulation step.
func TestSteadyStateAllocFree(t *testing.T) {
	src := rng.New(31)
	const n = 1024
	x := make([][]float64, n)
	y := make([][]float64, n)
	for i := range x {
		x[i] = []float64{src.Float64(), src.Float64()}
		y[i] = []float64{src.Float64(), src.Float64()}
	}
	r := New(4)
	r.SetHostWorkers(1)
	r.Fit(x, y)
	// A handful of fixed-size escapes (closure headers, WaitGroup) are
	// tolerated; what must not happen is the seed's O(n) per-row copies
	// and per-node tree allocations (~3n for this set).
	if allocs := testing.AllocsPerRun(5, func() { r.Fit(x, y) }); allocs > 4 {
		t.Errorf("steady-state Fit allocates %.1f per run", allocs)
	}
	s := r.NewSearcher()
	out := make([]float64, 2)
	q := []float64{0.5, 0.5}
	s.PredictWeighted(q, out) // warm the buffers
	if allocs := testing.AllocsPerRun(100, func() { s.PredictWeighted(q, out) }); allocs > 0 {
		t.Errorf("steady-state Searcher query allocates %.1f per run", allocs)
	}
}
