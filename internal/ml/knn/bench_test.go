package knn

import (
	"testing"

	"beamdyn/internal/rng"
)

func trainingSet(n, dim, outDim int, seed uint64) (x, y [][]float64) {
	src := rng.New(seed)
	x = make([][]float64, n)
	y = make([][]float64, n)
	for i := range x {
		xi := make([]float64, dim)
		for j := range xi {
			xi[j] = src.Float64()
		}
		yi := make([]float64, outDim)
		for j := range yi {
			yi[j] = src.Float64() * 10
		}
		x[i], y[i] = xi, yi
	}
	return x, y
}

// BenchmarkFit measures the per-step ONLINE-LEARNING cost at a 64x64-grid
// training-set size.
func BenchmarkFit(b *testing.B) {
	x, y := trainingSet(4096, 2, 8, 1)
	r := New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Fit(x, y)
	}
}

// BenchmarkPredict measures one forecast query against a 64x64-grid model.
func BenchmarkPredict(b *testing.B) {
	x, y := trainingSet(4096, 2, 8, 1)
	r := New(4)
	r.Fit(x, y)
	out := make([]float64, 8)
	q := []float64{0.3, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PredictWeighted(q, out)
	}
}

// BenchmarkPredictAllPoints measures a full grid forecast (every grid
// point queried), the per-step prediction cost of the Predictive kernel.
func BenchmarkPredictAllPoints(b *testing.B) {
	x, y := trainingSet(4096, 2, 8, 1)
	r := New(4)
	r.Fit(x, y)
	out := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range x {
			r.PredictWeighted(q, out)
		}
	}
}
