// Package tree implements a multi-output CART regression tree.
//
// The paper's future-work section proposes studying the effect of
// different learning algorithms on access-pattern forecasting beyond the
// kNN and linear-regression models of Section III.B; a regression tree is
// the natural next candidate: it is non-parametric like kNN but predicts
// in O(depth) instead of O(log n) with neighbour search, and it captures
// the sharp pattern transitions (visibility fronts) that linear models
// smooth over.
package tree

import (
	"fmt"
	"math"
	"sort"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth bounds the tree depth; 0 means 12.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; 0 means 4.
	MinLeaf int
	// MinImpurityDecrease prunes splits whose total variance reduction
	// falls below it (absolute); 0 means 1e-12.
	MinImpurityDecrease float64
}

func (c *Config) fill() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 4
	}
	if c.MinImpurityDecrease == 0 {
		c.MinImpurityDecrease = 1e-12
	}
}

// Regressor is a fitted regression tree. The zero value is untrained; use
// Fit (which also re-trains).
type Regressor struct {
	cfg    Config
	dim    int
	outDim int
	nodes  []node
}

// node is one tree node; leaves carry the mean output of their samples.
type node struct {
	// feature < 0 marks a leaf.
	feature     int
	threshold   float64
	left, right int32
	// value is the leaf prediction (nil for internal nodes).
	value []float64
}

// New returns a regressor with the given configuration.
func New(cfg Config) *Regressor {
	cfg.fill()
	return &Regressor{cfg: cfg}
}

// Trained reports whether the tree has been fitted.
func (r *Regressor) Trained() bool { return len(r.nodes) > 0 }

// Depth returns the fitted tree's depth (0 for a stump/untrained).
func (r *Regressor) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &r.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, rr := walk(n.left), walk(n.right)
		if l > rr {
			return l + 1
		}
		return rr + 1
	}
	if !r.Trained() {
		return 0
	}
	return walk(0)
}

// Leaves returns the number of leaves.
func (r *Regressor) Leaves() int {
	c := 0
	for i := range r.nodes {
		if r.nodes[i].feature < 0 {
			c++
		}
	}
	return c
}

// Fit grows the tree on (x, y), replacing any previous fit. Rows must
// share dimensions.
func (r *Regressor) Fit(x, y [][]float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tree: %d inputs, %d outputs", len(x), len(y)))
	}
	r.nodes = r.nodes[:0]
	if len(x) == 0 {
		return
	}
	r.dim = len(x[0])
	r.outDim = len(y[0])
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	r.grow(x, y, idx, 0)
}

// grow builds the subtree over the sample set idx and returns its node
// index.
func (r *Regressor) grow(x, y [][]float64, idx []int, depth int) int32 {
	self := int32(len(r.nodes))
	r.nodes = append(r.nodes, node{feature: -1})

	mean := r.meanOf(y, idx)
	if depth >= r.cfg.MaxDepth || len(idx) < 2*r.cfg.MinLeaf {
		r.nodes[self].value = mean
		return self
	}
	feature, threshold, gain := r.bestSplit(x, y, idx)
	if feature < 0 || gain < r.cfg.MinImpurityDecrease {
		r.nodes[self].value = mean
		return self
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < r.cfg.MinLeaf || len(right) < r.cfg.MinLeaf {
		r.nodes[self].value = mean
		return self
	}
	r.nodes[self].feature = feature
	r.nodes[self].threshold = threshold
	l := r.grow(x, y, left, depth+1)
	rr := r.grow(x, y, right, depth+1)
	r.nodes[self].left, r.nodes[self].right = l, rr
	return self
}

func (r *Regressor) meanOf(y [][]float64, idx []int) []float64 {
	mean := make([]float64, r.outDim)
	for _, i := range idx {
		for c, v := range y[i] {
			mean[c] += v
		}
	}
	inv := 1 / float64(len(idx))
	for c := range mean {
		mean[c] *= inv
	}
	return mean
}

// bestSplit scans every feature for the threshold that maximises the
// multi-output variance reduction, using the running-sums formulation so
// each feature costs one sort plus one linear pass.
func (r *Regressor) bestSplit(x, y [][]float64, idx []int) (feature int, threshold, gain float64) {
	feature = -1
	n := float64(len(idx))

	total := make([]float64, r.outDim)
	totalSq := make([]float64, r.outDim)
	for _, i := range idx {
		for c, v := range y[i] {
			total[c] += v
			totalSq[c] += v * v
		}
	}
	var parentSSE float64
	for c := 0; c < r.outDim; c++ {
		parentSSE += totalSq[c] - total[c]*total[c]/n
	}

	order := make([]int, len(idx))
	leftSum := make([]float64, r.outDim)
	leftSq := make([]float64, r.outDim)
	for f := 0; f < r.dim; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		for c := range leftSum {
			leftSum[c], leftSq[c] = 0, 0
		}
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			for c, v := range y[i] {
				leftSum[c] += v
				leftSq[c] += v * v
			}
			if x[order[k]][f] == x[order[k+1]][f] {
				continue // cannot split between equal values
			}
			nl := float64(k + 1)
			nr := n - nl
			var sse float64
			for c := 0; c < r.outDim; c++ {
				rightSum := total[c] - leftSum[c]
				rightSq := totalSq[c] - leftSq[c]
				sse += leftSq[c] - leftSum[c]*leftSum[c]/nl
				sse += rightSq - rightSum*rightSum/nr
			}
			if g := parentSSE - sse; g > gain {
				gain = g
				feature = f
				threshold = 0.5 * (x[order[k]][f] + x[order[k+1]][f])
			}
		}
	}
	if math.IsNaN(gain) {
		return -1, 0, 0
	}
	return feature, threshold, gain
}

// Predict writes the leaf mean for x into out.
func (r *Regressor) Predict(x, out []float64) {
	if !r.Trained() {
		panic("tree: Predict before Fit")
	}
	if len(x) != r.dim {
		panic(fmt.Sprintf("tree: query dim %d, trained %d", len(x), r.dim))
	}
	if len(out) != r.outDim {
		panic(fmt.Sprintf("tree: out dim %d, trained %d", len(out), r.outDim))
	}
	i := int32(0)
	for {
		n := &r.nodes[i]
		if n.feature < 0 {
			copy(out, n.value)
			return
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// OutDim returns the trained output dimension (0 before Fit).
func (r *Regressor) OutDim() int { return r.outDim }
