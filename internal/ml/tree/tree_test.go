package tree

import (
	"math"
	"testing"

	"beamdyn/internal/rng"
)

func TestStepFunctionExactRecovery(t *testing.T) {
	// A tree must capture a sharp step that smooth models blur.
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		v := float64(i) / 200
		xs = append(xs, []float64{v})
		if v < 0.5 {
			ys = append(ys, []float64{1})
		} else {
			ys = append(ys, []float64{5})
		}
	}
	r := New(Config{})
	r.Fit(xs, ys)
	out := make([]float64, 1)
	r.Predict([]float64{0.2}, out)
	if out[0] != 1 {
		t.Fatalf("left of step: %g", out[0])
	}
	r.Predict([]float64{0.8}, out)
	if out[0] != 5 {
		t.Fatalf("right of step: %g", out[0])
	}
}

func TestSmooth2DRegression(t *testing.T) {
	f := func(x, y float64) float64 { return math.Sin(2*x) + y*y }
	var xs, ys [][]float64
	for i := 0; i <= 60; i++ {
		for j := 0; j <= 60; j++ {
			x, y := float64(i)/60, float64(j)/60
			xs = append(xs, []float64{x, y})
			ys = append(ys, []float64{f(x, y)})
		}
	}
	r := New(Config{MaxDepth: 14, MinLeaf: 2})
	r.Fit(xs, ys)
	src := rng.New(3)
	out := make([]float64, 1)
	var worst float64
	for q := 0; q < 200; q++ {
		x, y := src.Float64(), src.Float64()
		r.Predict([]float64{x, y}, out)
		if d := math.Abs(out[0] - f(x, y)); d > worst {
			worst = d
		}
	}
	if worst > 0.1 {
		t.Fatalf("worst error %g on a smooth target", worst)
	}
}

func TestMultiOutput(t *testing.T) {
	var xs, ys [][]float64
	for i := 0; i < 100; i++ {
		v := float64(i)
		xs = append(xs, []float64{v})
		ys = append(ys, []float64{v * 2, -v})
	}
	r := New(Config{MaxDepth: 10, MinLeaf: 1})
	r.Fit(xs, ys)
	out := make([]float64, 2)
	r.Predict([]float64{50}, out)
	if math.Abs(out[0]-100) > 3 || math.Abs(out[1]+50) > 2 {
		t.Fatalf("multi-output prediction %v", out)
	}
	if r.OutDim() != 2 {
		t.Fatalf("OutDim = %d", r.OutDim())
	}
}

func TestDepthAndLeafConstraints(t *testing.T) {
	var xs, ys [][]float64
	src := rng.New(7)
	for i := 0; i < 500; i++ {
		xs = append(xs, []float64{src.Float64()})
		ys = append(ys, []float64{src.Float64()})
	}
	r := New(Config{MaxDepth: 3, MinLeaf: 10})
	r.Fit(xs, ys)
	if d := r.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds max 3", d)
	}
	if l := r.Leaves(); l > 8 {
		t.Fatalf("%d leaves from depth-3 tree", l)
	}
}

func TestConstantTargetSingleLeaf(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	ys := [][]float64{{9}, {9}, {9}, {9}, {9}, {9}, {9}, {9}}
	r := New(Config{})
	r.Fit(xs, ys)
	if r.Leaves() != 1 {
		t.Fatalf("constant target grew %d leaves", r.Leaves())
	}
	out := make([]float64, 1)
	r.Predict([]float64{100}, out)
	if out[0] != 9 {
		t.Fatalf("prediction %g", out[0])
	}
}

func TestDuplicateFeatureValues(t *testing.T) {
	// All x identical: no legal split, must become a leaf with the mean.
	xs := [][]float64{{1}, {1}, {1}, {1}}
	ys := [][]float64{{0}, {2}, {4}, {6}}
	r := New(Config{MinLeaf: 1})
	r.Fit(xs, ys)
	out := make([]float64, 1)
	r.Predict([]float64{1}, out)
	if out[0] != 3 {
		t.Fatalf("mean prediction %g, want 3", out[0])
	}
}

func TestRefitReplaces(t *testing.T) {
	r := New(Config{MinLeaf: 1})
	r.Fit([][]float64{{0}, {1}}, [][]float64{{1}, {1}})
	r.Fit([][]float64{{0}, {1}}, [][]float64{{7}, {7}})
	out := make([]float64, 1)
	r.Predict([]float64{0}, out)
	if out[0] != 7 {
		t.Fatalf("stale fit: %g", out[0])
	}
}

func TestEmptyFitUntrains(t *testing.T) {
	r := New(Config{})
	r.Fit([][]float64{{1}}, [][]float64{{1}})
	r.Fit(nil, nil)
	if r.Trained() {
		t.Fatal("empty fit left tree trained")
	}
}

func TestPredictPanics(t *testing.T) {
	r := New(Config{})
	cases := []func(){
		func() { r.Predict([]float64{1}, make([]float64, 1)) }, // untrained
		func() {
			r.Fit([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}, {13, 14}, {15, 16}},
				[][]float64{{1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}})
			r.Predict([]float64{1}, make([]float64, 1)) // wrong in-dim
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
