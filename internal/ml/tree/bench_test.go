package tree

import (
	"testing"

	"beamdyn/internal/rng"
)

func dataset(n int, seed uint64) (x, y [][]float64) {
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		a, b := src.Float64(), src.Float64()
		x = append(x, []float64{a, b})
		y = append(y, []float64{a*a + b, a - b})
	}
	return x, y
}

func BenchmarkFit4096(b *testing.B) {
	x, y := dataset(4096, 1)
	r := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Fit(x, y)
	}
}

func BenchmarkPredict(b *testing.B) {
	x, y := dataset(4096, 1)
	r := New(Config{})
	r.Fit(x, y)
	out := make([]float64, 2)
	q := []float64{0.4, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Predict(q, out)
	}
}
