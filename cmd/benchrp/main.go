// Command benchrp measures the rp-integral evaluation core: ns/point and
// allocations/point of the allocation-free panel evaluator against the
// closure-based reference path, plus full-grid solve cost per host worker
// count, and writes the result as JSON. `make bench-rp-json` runs it at
// the committed 128x128 configuration and refreshes BENCH_rp.json;
// `make bench-rp` runs the small -check variant in CI, which enforces the
// evaluator's speedup floor and zero-allocation contract.
//
// Usage:
//
//	benchrp -grid 128 -reps 3 -workers 1,2,4 -out BENCH_rp.json
//	benchrp -grid 48 -check -min-speedup 3 -out /tmp/bench_rp_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"beamdyn/internal/analytic"
	"beamdyn/internal/grid"
	"beamdyn/internal/obs/analysis"
	"beamdyn/internal/phys"
	"beamdyn/internal/retard"
)

// solveStats is one full-grid solve measurement.
type solveStats struct {
	Workers    int     `json:"workers"`
	SolveNs    float64 `json:"solve_ns"`
	NsPerPoint float64 `json:"ns_per_point"`
}

// report is the BENCH_rp.json schema; the gate-facing fields mirror
// analysis.RPBaseline.
type report struct {
	Benchmark               string       `json:"benchmark"`
	Date                    string       `json:"date"`
	Grid                    int          `json:"grid"`
	SamplePoints            int          `json:"sample_points"`
	Reps                    int          `json:"reps"`
	GoMaxProcs              int          `json:"gomaxprocs"`
	SeedNsPerPoint          float64      `json:"seed_ns_per_point"`
	ClosureNsPerPoint       float64      `json:"closure_ns_per_point"`
	EvaluatorNsPerPoint     float64      `json:"evaluator_ns_per_point"`
	SpeedupVsSeed           float64      `json:"speedup_vs_seed"`
	Speedup                 float64      `json:"speedup"`
	EvaluatorAllocsPerPoint float64      `json:"evaluator_allocs_per_point"`
	SolveNsPerPoint         float64      `json:"solve_ns_per_point"`
	Solve                   []solveStats `json:"solve"`
	MinSpeedup              float64      `json:"min_speedup"`
}

// problem rebuilds the continuum benchmark scenario of the kernel tests at
// the requested grid resolution (the seed benchmark config). weightExp
// selects the radial kernel exponent: exactly 1/3 takes the Cbrt fast
// path; nudging it by one ulp routes the weight through math.Pow — the
// seed's implementation — with physically indistinguishable values, which
// is how the seed-equivalent baseline is timed in the current binary.
func problem(nx int, weightExp float64) (*retard.Problem, *grid.Grid) {
	beam := phys.Beam{
		NumParticles: 1, TotalCharge: 1e-9,
		SigmaX: 20e-6, SigmaY: 50e-6, Energy: 4.3e9,
	}
	params := retard.Params{
		Dt:        50e-6 / phys.C,
		Kappa:     4,
		Tol:       1e-8,
		WeightExp: weightExp,
		Component: grid.CompCharge,
	}
	h := grid.NewHistory(params.Kappa + 4)
	v := beam.Beta() * phys.C
	var last *grid.Grid
	for s := 0; s < 8; s++ {
		cy := float64(s) * v * params.Dt
		hx, hy := 5*beam.SigmaX, 5*beam.SigmaY
		g := grid.New(nx, nx, grid.MomentComponents, -hx, cy-hy, 2*hx/float64(nx-1), 2*hy/float64(nx-1))
		g.Step = s
		analytic.ContinuumDeposit(g, beam, 0, cy)
		h.Push(g)
		last = g
	}
	p := retard.NewProblem(h, params)
	target := grid.New(nx, nx, 1, last.X0, last.Y0, last.DX, last.DY)
	return p, target
}

// samplePoints scatters ~64 probe points across the target, bunch centre
// included, so the per-point numbers average full-circle and narrow-cone
// geometry the way a real solve does.
func samplePoints(target *grid.Grid) [][2]float64 {
	stride := target.NX / 8
	if stride < 1 {
		stride = 1
	}
	var pts [][2]float64
	for iy := stride / 2; iy < target.NY; iy += stride {
		for ix := stride / 2; ix < target.NX; ix += stride {
			x, y := target.Point(ix, iy)
			pts = append(pts, [2]float64{x, y})
		}
	}
	return pts
}

// measureInterleaved times each candidate over the sample points,
// alternating candidates within every rep so transient machine load hits
// them all alike, and reports each candidate's fastest pass — the minimum
// is the noise-robust estimator on shared machines. GC is disabled around
// the timed region.
func measureInterleaved(pts [][2]float64, reps int, fns ...func(x, y float64)) []float64 {
	for _, fn := range fns { // warm-up pass each
		for _, pt := range pts {
			fn(pt[0], pt[1])
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	best := make([]float64, len(fns))
	for i := range best {
		best[i] = math.Inf(1)
	}
	for r := 0; r < reps; r++ {
		for i, fn := range fns {
			t0 := time.Now()
			for _, pt := range pts {
				fn(pt[0], pt[1])
			}
			if wall := time.Since(t0).Seconds(); wall < best[i] {
				best[i] = wall
			}
		}
	}
	for i := range best {
		best[i] *= 1e9 / float64(len(pts))
	}
	return best
}

// measureAllocs reports fn's steady-state heap allocations per point.
func measureAllocs(pts [][2]float64, fn func(x, y float64)) float64 {
	for _, pt := range pts { // warm-up pass
		fn(pt[0], pt[1])
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, pt := range pts {
		fn(pt[0], pt[1])
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(pts))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrp: ")
	var (
		nx         = flag.Int("grid", 128, "grid resolution (NxN)")
		reps       = flag.Int("reps", 3, "measurement repetitions")
		workers    = flag.String("workers", "1,2,4", "comma-separated host worker counts for the full-grid solve")
		out        = flag.String("out", "BENCH_rp.json", "output file")
		check      = flag.Bool("check", false, "enforce -min-speedup and the zero-allocation contract (exit 1 on failure)")
		minSpeedup = flag.Float64("min-speedup", 3, "required closure/evaluator ns-per-point ratio in -check mode")
	)
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			log.Fatalf("bad -workers entry %q", f)
		}
		counts = append(counts, w)
	}

	p, target := problem(*nx, 1.0/3)
	pts := samplePoints(target)

	// Seed-equivalent baseline: the closure path with the weight routed
	// through math.Pow, as the pre-refactor SolvePoint computed it.
	pSeed, _ := problem(*nx, math.Nextafter(1.0/3, 1))
	e := retard.NewEvaluator(p)
	evalFn := func(x, y float64) {
		e.ResetScratch()
		e.SolvePoint(x, y)
	}
	ns := measureInterleaved(pts, *reps,
		func(x, y float64) { pSeed.SolvePointClosure(x, y) },
		func(x, y float64) { p.SolvePointClosure(x, y) },
		evalFn,
	)
	seedNs, closureNs, evalNs := ns[0], ns[1], ns[2]
	evalAllocs := measureAllocs(pts, evalFn)

	rep := report{
		Benchmark:               analysis.RPBenchmarkName,
		Date:                    time.Now().UTC().Format("2006-01-02"),
		Grid:                    *nx,
		SamplePoints:            len(pts),
		Reps:                    *reps,
		GoMaxProcs:              runtime.GOMAXPROCS(0),
		SeedNsPerPoint:          seedNs,
		ClosureNsPerPoint:       closureNs,
		EvaluatorNsPerPoint:     evalNs,
		SpeedupVsSeed:           seedNs / evalNs,
		Speedup:                 closureNs / evalNs,
		EvaluatorAllocsPerPoint: evalAllocs,
		MinSpeedup:              *minSpeedup,
	}
	fmt.Printf("point: seed=%.0fns closure=%.0fns evaluator=%.0fns speedup=%.2fx (vs seed %.2fx) allocs=%.3f/point (%d points x %d reps)\n",
		seedNs, closureNs, evalNs, rep.Speedup, rep.SpeedupVsSeed, evalAllocs, len(pts), *reps)

	points := float64(target.NX * target.NY)
	for _, w := range counts {
		s := retard.GridSolver{Workers: w}
		s.Solve(p, target.Clone(), 0) // warm the per-worker evaluators
		t0 := time.Now()
		for r := 0; r < *reps; r++ {
			s.Solve(p, target.Clone(), 0)
		}
		ns := time.Since(t0).Seconds() * 1e9 / float64(*reps)
		st := solveStats{Workers: w, SolveNs: ns, NsPerPoint: ns / points}
		rep.Solve = append(rep.Solve, st)
		if w == 1 {
			rep.SolveNsPerPoint = st.NsPerPoint
		}
		fmt.Printf("solve: workers=%d %.3fms (%.0f ns/point)\n", w, ns/1e6, st.NsPerPoint)
	}
	if rep.SolveNsPerPoint == 0 && len(rep.Solve) > 0 {
		rep.SolveNsPerPoint = rep.Solve[0].NsPerPoint
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *check {
		ok := true
		if rep.SpeedupVsSeed < *minSpeedup {
			log.Printf("CHECK FAILED: speedup vs seed %.2fx < required %.2fx", rep.SpeedupVsSeed, *minSpeedup)
			ok = false
		}
		if evalAllocs >= 1 {
			log.Printf("CHECK FAILED: evaluator allocates %.3f objects/point, want 0", evalAllocs)
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Printf("check passed: speedup vs seed %.2fx >= %.2fx, %.3f allocs/point\n", rep.SpeedupVsSeed, *minSpeedup, evalAllocs)
	}
}
