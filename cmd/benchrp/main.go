// Command benchrp measures the rp-integral evaluation core: ns/point and
// allocations/point of the allocation-free panel evaluator against the
// closure-based reference path, plus full-grid tiled solve cost per host
// worker count — each solve row measured with GOMAXPROCS raised to its
// worker count and the actual gomaxprocs/num_cpu recorded — and writes
// the result as JSON. `make bench-rp-json` runs it at the committed
// 128x128 configuration and refreshes BENCH_rp.json; `make bench-rp`
// runs the small -check variant in CI, which enforces the evaluator's
// speedup floor and zero-allocation contract; `make bench-rp-scaling`
// adds the worker sweep and the scaling-efficiency floor (skipped, with
// the measured CPU count, on machines with fewer cores than workers).
//
// Usage:
//
//	benchrp -grid 128 -reps 10 -workers 1,2,4 -out BENCH_rp.json
//	benchrp -grid 48 -check -min-speedup 6 -out /tmp/bench_rp_ci.json
//	benchrp -grid 48 -check -workers 1,2,4 -min-scaling 1.6 -scaling-workers 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"beamdyn/internal/analytic"
	"beamdyn/internal/grid"
	"beamdyn/internal/obs/analysis"
	"beamdyn/internal/phys"
	"beamdyn/internal/retard"
)

// solveStats is one full-grid solve measurement: min-of-reps wall time at
// a given worker count, measured with GOMAXPROCS raised to the worker
// count (the un-pinning this row's gomaxprocs field records) and the
// machine's CPU count alongside, so the scaling gate can tell a genuine
// flat-scaling regression from a box that simply has fewer cores than
// workers.
type solveStats struct {
	Workers    int     `json:"workers"`
	SolveNs    float64 `json:"solve_ns"`
	NsPerPoint float64 `json:"ns_per_point"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	Efficiency float64 `json:"efficiency"`
}

// report is the BENCH_rp.json schema; the gate-facing fields mirror
// analysis.RPBaseline.
type report struct {
	Benchmark               string       `json:"benchmark"`
	Date                    string       `json:"date"`
	Grid                    int          `json:"grid"`
	SamplePoints            int          `json:"sample_points"`
	Reps                    int          `json:"reps"`
	GoMaxProcs              int          `json:"gomaxprocs"`
	NumCPU                  int          `json:"num_cpu"`
	SeedNsPerPoint          float64      `json:"seed_ns_per_point"`
	ClosureNsPerPoint       float64      `json:"closure_ns_per_point"`
	EvaluatorNsPerPoint     float64      `json:"evaluator_ns_per_point"`
	SpeedupVsSeed           float64      `json:"speedup_vs_seed"`
	Speedup                 float64      `json:"speedup"`
	EvaluatorAllocsPerPoint float64      `json:"evaluator_allocs_per_point"`
	SolveNsPerPoint         float64      `json:"solve_ns_per_point"`
	Solve                   []solveStats `json:"solve"`
	MinSpeedup              float64      `json:"min_speedup"`
	MinScaling              float64      `json:"min_scaling"`
	ScalingWorkers          int          `json:"scaling_workers"`
}

// problem rebuilds the continuum benchmark scenario of the kernel tests at
// the requested grid resolution (the seed benchmark config). weightExp
// selects the radial kernel exponent: exactly 1/3 takes the Cbrt fast
// path; nudging it by one ulp routes the weight through math.Pow — the
// seed's implementation — with physically indistinguishable values, which
// is how the seed-equivalent baseline is timed in the current binary.
func problem(nx int, weightExp float64) (*retard.Problem, *grid.Grid) {
	beam := phys.Beam{
		NumParticles: 1, TotalCharge: 1e-9,
		SigmaX: 20e-6, SigmaY: 50e-6, Energy: 4.3e9,
	}
	params := retard.Params{
		Dt:        50e-6 / phys.C,
		Kappa:     4,
		Tol:       1e-8,
		WeightExp: weightExp,
		Component: grid.CompCharge,
	}
	h := grid.NewHistory(params.Kappa + 4)
	v := beam.Beta() * phys.C
	var last *grid.Grid
	for s := 0; s < 8; s++ {
		cy := float64(s) * v * params.Dt
		hx, hy := 5*beam.SigmaX, 5*beam.SigmaY
		g := grid.New(nx, nx, grid.MomentComponents, -hx, cy-hy, 2*hx/float64(nx-1), 2*hy/float64(nx-1))
		g.Step = s
		analytic.ContinuumDeposit(g, beam, 0, cy)
		h.Push(g)
		last = g
	}
	p := retard.NewProblem(h, params)
	target := grid.New(nx, nx, 1, last.X0, last.Y0, last.DX, last.DY)
	return p, target
}

// samplePoints scatters ~64 probe points across the target, bunch centre
// included, so the per-point numbers average full-circle and narrow-cone
// geometry the way a real solve does.
func samplePoints(target *grid.Grid) [][2]float64 {
	stride := target.NX / 8
	if stride < 1 {
		stride = 1
	}
	var pts [][2]float64
	for iy := stride / 2; iy < target.NY; iy += stride {
		for ix := stride / 2; ix < target.NX; ix += stride {
			x, y := target.Point(ix, iy)
			pts = append(pts, [2]float64{x, y})
		}
	}
	return pts
}

// measureInterleaved times each candidate over the sample points,
// alternating candidates within every rep so transient machine load hits
// them all alike, and reports each candidate's fastest pass — the minimum
// is the noise-robust estimator on shared machines. GC is disabled around
// the timed region.
func measureInterleaved(pts [][2]float64, reps int, fns ...func(x, y float64)) []float64 {
	for _, fn := range fns { // warm-up pass each
		for _, pt := range pts {
			fn(pt[0], pt[1])
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	best := make([]float64, len(fns))
	for i := range best {
		best[i] = math.Inf(1)
	}
	for r := 0; r < reps; r++ {
		for i, fn := range fns {
			t0 := time.Now()
			for _, pt := range pts {
				fn(pt[0], pt[1])
			}
			if wall := time.Since(t0).Seconds(); wall < best[i] {
				best[i] = wall
			}
		}
	}
	for i := range best {
		best[i] *= 1e9 / float64(len(pts))
	}
	return best
}

// measureAllocs reports fn's steady-state heap allocations per point.
func measureAllocs(pts [][2]float64, fn func(x, y float64)) float64 {
	for _, pt := range pts { // warm-up pass
		fn(pt[0], pt[1])
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, pt := range pts {
		fn(pt[0], pt[1])
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(pts))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrp: ")
	var (
		nx          = flag.Int("grid", 128, "grid resolution (NxN)")
		reps        = flag.Int("reps", 3, "measurement repetitions")
		workers     = flag.String("workers", "1,2,4", "comma-separated host worker counts for the full-grid solve")
		out         = flag.String("out", "BENCH_rp.json", "output file")
		check       = flag.Bool("check", false, "enforce -min-speedup, -min-scaling and the zero-allocation contract (exit 1 on failure)")
		minSpeedup  = flag.Float64("min-speedup", 6, "required seed/evaluator ns-per-point ratio in -check mode")
		minScaling  = flag.Float64("min-scaling", 1.6, "required solve speedup_vs_1 at -scaling-workers in -check mode (enforced only when the machine has that many CPUs; 0 disables for single-worker runs)")
		scalingAt   = flag.Int("scaling-workers", 4, "worker count the -min-scaling floor applies to")
		tileWorkers = flag.String("tile", "", "tile shape WxH for the solve rows (empty = solver default)")
	)
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			log.Fatalf("bad -workers entry %q", f)
		}
		counts = append(counts, w)
	}

	p, target := problem(*nx, 1.0/3)
	pts := samplePoints(target)

	// Seed-equivalent baseline: the closure path with the weight routed
	// through math.Pow, as the pre-refactor SolvePoint computed it.
	pSeed, _ := problem(*nx, math.Nextafter(1.0/3, 1))
	e := retard.NewEvaluator(p)
	evalFn := func(x, y float64) {
		e.ResetScratch()
		e.SolvePoint(x, y)
	}
	ns := measureInterleaved(pts, *reps,
		func(x, y float64) { pSeed.SolvePointClosure(x, y) },
		func(x, y float64) { p.SolvePointClosure(x, y) },
		evalFn,
	)
	seedNs, closureNs, evalNs := ns[0], ns[1], ns[2]
	evalAllocs := measureAllocs(pts, evalFn)

	rep := report{
		Benchmark:               analysis.RPBenchmarkName,
		Date:                    time.Now().UTC().Format("2006-01-02"),
		Grid:                    *nx,
		SamplePoints:            len(pts),
		Reps:                    *reps,
		GoMaxProcs:              runtime.GOMAXPROCS(0),
		NumCPU:                  runtime.NumCPU(),
		SeedNsPerPoint:          seedNs,
		ClosureNsPerPoint:       closureNs,
		EvaluatorNsPerPoint:     evalNs,
		SpeedupVsSeed:           seedNs / evalNs,
		Speedup:                 closureNs / evalNs,
		EvaluatorAllocsPerPoint: evalAllocs,
		MinSpeedup:              *minSpeedup,
		MinScaling:              *minScaling,
		ScalingWorkers:          *scalingAt,
	}
	fmt.Printf("point: seed=%.0fns closure=%.0fns evaluator=%.0fns speedup=%.2fx (vs seed %.2fx) allocs=%.3f/point (%d points x %d reps)\n",
		seedNs, closureNs, evalNs, rep.Speedup, rep.SpeedupVsSeed, evalAllocs, len(pts), *reps)

	var tileW, tileH int
	if *tileWorkers != "" {
		if _, err := fmt.Sscanf(*tileWorkers, "%dx%d", &tileW, &tileH); err != nil {
			log.Fatalf("bad -tile %q (want WxH)", *tileWorkers)
		}
	}
	points := float64(target.NX * target.NY)
	var ns1 float64
	for _, w := range counts {
		// Un-pin the solve row: give the scheduler a P per worker for the
		// duration of this measurement, and record both what we set and
		// how many cores the box actually has — the scaling gate enforces
		// efficiency only where num_cpu covers the workers.
		prev := runtime.GOMAXPROCS(w)
		s := retard.GridSolver{Workers: w, TileW: tileW, TileH: tileH}
		tgt := target.Clone()
		s.Solve(p, tgt, 0) // warm the per-worker evaluators
		best := math.Inf(1)
		for r := 0; r < *reps; r++ {
			t0 := time.Now()
			s.Solve(p, tgt, 0)
			if wall := time.Since(t0).Seconds(); wall < best {
				best = wall
			}
		}
		runtime.GOMAXPROCS(prev)
		ns := best * 1e9
		st := solveStats{
			Workers: w, SolveNs: ns, NsPerPoint: ns / points,
			GoMaxProcs: w, NumCPU: runtime.NumCPU(),
		}
		if w == 1 {
			ns1 = st.NsPerPoint
			rep.SolveNsPerPoint = st.NsPerPoint
		}
		if ns1 > 0 {
			st.SpeedupVs1 = ns1 / st.NsPerPoint
			st.Efficiency = st.SpeedupVs1 / float64(w)
		}
		rep.Solve = append(rep.Solve, st)
		fmt.Printf("solve: workers=%d gomaxprocs=%d %.3fms (%.0f ns/point, %.2fx vs 1w)\n",
			w, st.GoMaxProcs, ns/1e6, st.NsPerPoint, st.SpeedupVs1)
	}
	if rep.SolveNsPerPoint == 0 && len(rep.Solve) > 0 {
		rep.SolveNsPerPoint = rep.Solve[0].NsPerPoint
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *check {
		ok := true
		if evalAllocs >= 1 {
			log.Printf("CHECK FAILED: evaluator allocates %.3f objects/point, want 0", evalAllocs)
			ok = false
		}
		// Speedup floor and scaling efficiency run through the same
		// self-check logic the obstool gate applies to the committed file,
		// so a row this binary writes can never pass here and fail there.
		checks := analysis.CheckRPBaseline(baselineOf(rep))
		fmt.Print(analysis.RPCheckTable(checks))
		if !analysis.RPChecksOK(checks) {
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Println("check passed")
	}
}

// baselineOf maps the report onto the gate's baseline schema.
func baselineOf(rep report) analysis.RPBaseline {
	b := analysis.RPBaseline{
		Benchmark:           rep.Benchmark,
		Grid:                rep.Grid,
		SeedNsPerPoint:      rep.SeedNsPerPoint,
		ClosureNsPerPoint:   rep.ClosureNsPerPoint,
		EvaluatorNsPerPoint: rep.EvaluatorNsPerPoint,
		SpeedupVsSeed:       rep.SpeedupVsSeed,
		SolveNsPerPoint:     rep.SolveNsPerPoint,
		MinSpeedup:          rep.MinSpeedup,
		MinScaling:          rep.MinScaling,
		ScalingWorkers:      rep.ScalingWorkers,
	}
	for _, s := range rep.Solve {
		b.Solve = append(b.Solve, analysis.RPSolveRow{
			Workers: s.Workers, NsPerPoint: s.NsPerPoint,
			GoMaxProcs: s.GoMaxProcs, NumCPU: s.NumCPU,
			SpeedupVs1: s.SpeedupVs1,
		})
	}
	return b
}
