// Command benchhost measures the kernels' host-side phase costs (predict,
// cluster, train) in ns/step and allocations/step, per kernel and per host
// worker count, and writes the result as JSON. `make bench-json` runs it at
// the committed 128x128 configuration and refreshes BENCH_host.json.
//
// Usage:
//
//	benchhost -grid 128 -steps 3 -warmup 2 -workers 1,2,4 -out BENCH_host.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"beamdyn/internal/analytic"
	"beamdyn/internal/gpusim"
	"beamdyn/internal/grid"
	"beamdyn/internal/kernels"
	"beamdyn/internal/phys"
	"beamdyn/internal/retard"
)

// phaseStats is one (kernel, workers) measurement, averaged over the
// measured steps.
type phaseStats struct {
	Workers         int     `json:"workers"`
	StepWallNs      float64 `json:"step_wall_ns"`
	PredictNs       float64 `json:"predict_ns"`
	ClusterNs       float64 `json:"cluster_ns"`
	TrainNs         float64 `json:"train_ns"`
	HostNs          float64 `json:"host_ns"`
	PredictAllocs   float64 `json:"predict_allocs"`
	ClusterAllocs   float64 `json:"cluster_allocs"`
	TrainAllocs     float64 `json:"train_allocs"`
	FallbackEntries float64 `json:"fallback_entries"`
}

// report is the BENCH_host.json schema.
type report struct {
	Benchmark    string                  `json:"benchmark"`
	Date         string                  `json:"date"`
	Grid         int                     `json:"grid"`
	Steps        int                     `json:"steps"`
	Warmup       int                     `json:"warmup"`
	GoMaxProcs   int                     `json:"gomaxprocs"`
	SeedBaseline map[string]any          `json:"seed_baseline"`
	Kernels      map[string][]phaseStats `json:"kernels"`
}

// problem rebuilds the continuum benchmark scenario of the kernel tests at
// the requested grid resolution.
func problem(nx int) (*retard.Problem, *grid.Grid) {
	beam := phys.Beam{
		NumParticles: 1, TotalCharge: 1e-9,
		SigmaX: 20e-6, SigmaY: 50e-6, Energy: 4.3e9,
	}
	params := retard.Params{
		Dt:        50e-6 / phys.C,
		Kappa:     4,
		Tol:       1e-8,
		WeightExp: 1.0 / 3,
		Component: grid.CompCharge,
	}
	h := grid.NewHistory(params.Kappa + 4)
	v := beam.Beta() * phys.C
	var last *grid.Grid
	for s := 0; s < 8; s++ {
		cy := float64(s) * v * params.Dt
		hx, hy := 5*beam.SigmaX, 5*beam.SigmaY
		g := grid.New(nx, nx, grid.MomentComponents, -hx, cy-hy, 2*hx/float64(nx-1), 2*hy/float64(nx-1))
		g.Step = s
		analytic.ContinuumDeposit(g, beam, 0, cy)
		h.Push(g)
		last = g
	}
	p := retard.NewProblem(h, params)
	target := grid.New(nx, nx, 1, last.X0, last.Y0, last.DX, last.DY)
	return p, target
}

func measure(mk func() kernels.Algorithm, workers, warmup, steps int, p *retard.Problem, target *grid.Grid) phaseStats {
	algo := mk()
	if hp, ok := algo.(kernels.HostParallel); ok {
		hp.SetHostWorkers(workers)
	}
	for s := 0; s < warmup; s++ {
		algo.Step(p, target.Clone(), 0)
	}
	st := phaseStats{Workers: workers}
	for s := 0; s < steps; s++ {
		g := target.Clone()
		t0 := time.Now()
		res := algo.Step(p, g, 0)
		st.StepWallNs += time.Since(t0).Seconds() * 1e9
		st.PredictNs += res.Host.Predict * 1e9
		st.ClusterNs += res.Host.Clustering * 1e9
		st.TrainNs += res.Host.Train * 1e9
		st.PredictAllocs += float64(res.Host.PredictAllocs)
		st.ClusterAllocs += float64(res.Host.ClusteringAllocs)
		st.TrainAllocs += float64(res.Host.TrainAllocs)
		st.FallbackEntries += float64(res.FallbackEntries)
	}
	inv := 1 / float64(steps)
	st.StepWallNs *= inv
	st.PredictNs *= inv
	st.ClusterNs *= inv
	st.TrainNs *= inv
	st.HostNs = st.PredictNs + st.ClusterNs + st.TrainNs
	st.PredictAllocs *= inv
	st.ClusterAllocs *= inv
	st.TrainAllocs *= inv
	st.FallbackEntries *= inv
	return st
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchhost: ")
	var (
		nx      = flag.Int("grid", 128, "grid resolution (NxN)")
		steps   = flag.Int("steps", 3, "measured steps per configuration")
		warmup  = flag.Int("warmup", 2, "warm-up steps per configuration (train the model, warm the scratch)")
		workers = flag.String("workers", "1,2,4", "comma-separated host worker counts")
		out     = flag.String("out", "BENCH_host.json", "output file")
	)
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			log.Fatalf("bad -workers entry %q", f)
		}
		counts = append(counts, w)
	}

	kernels.CountHostAllocs = true
	p, target := problem(*nx)
	mks := map[string]func() kernels.Algorithm{
		"predictive": func() kernels.Algorithm { return kernels.NewPredictive(gpusim.New(gpusim.KeplerK40())) },
		"heuristic":  func() kernels.Algorithm { return kernels.NewHeuristic(gpusim.New(gpusim.KeplerK40())) },
		"twophase":   func() kernels.Algorithm { return kernels.NewTwoPhase(gpusim.New(gpusim.KeplerK40())) },
	}

	rep := report{
		Benchmark:  "host-phases",
		Date:       time.Now().UTC().Format("2006-01-02"),
		Grid:       *nx,
		Steps:      *steps,
		Warmup:     *warmup,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		// Pre-refactor (serial, allocating) host-phase costs, measured on
		// this machine at 128x128 steady state before internal/hostpar
		// landed; kept for the speedup/alloc-drop comparison.
		SeedBaseline: map[string]any{
			"grid":                    128,
			"predict_sec":             0.0248,
			"cluster_sec":             0.0013,
			"train_sec":               0.0186,
			"predict_allocs_per_step": 228868,
		},
		Kernels: map[string][]phaseStats{},
	}
	for name, mk := range mks {
		for _, w := range counts {
			st := measure(mk, w, *warmup, *steps, p, target)
			rep.Kernels[name] = append(rep.Kernels[name], st)
			fmt.Printf("%-10s workers=%d: step=%.3fms host=%.3fms (predict=%.3f cluster=%.3f train=%.3f) allocs=%.0f/%.0f/%.0f\n",
				name, w, st.StepWallNs/1e6, st.HostNs/1e6,
				st.PredictNs/1e6, st.ClusterNs/1e6, st.TrainNs/1e6,
				st.PredictAllocs, st.ClusterAllocs, st.TrainAllocs)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
