// Command validate reproduces the paper's validation experiments: Figure 2
// (analytic versus computed collective forces for the rigid Gaussian
// bunch) and Figure 3 (Monte-Carlo 1/N convergence of the force error).
//
// Usage:
//
//	validate -fig 2 -scale medium
//	validate -fig 3 -scale full
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"beamdyn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")
	var (
		fig    = flag.Int("fig", 2, "figure to reproduce: 2 or 3")
		scale  = flag.String("scale", "medium", "experiment scale: quick | medium | full")
		seed   = flag.Uint64("seed", 1, "Monte-Carlo seed")
		svgDir = flag.String("svg", "", "also write the figure(s) as SVG into this directory")
	)
	flag.Parse()

	sc, ok := map[string]experiments.Scale{
		"quick":  experiments.Quick,
		"medium": experiments.Medium,
		"full":   experiments.Full,
	}[*scale]
	if !ok {
		log.Printf("unknown scale %q", *scale)
		flag.Usage()
		os.Exit(2)
	}

	writeSVG := func(name string, render func(w io.Writer) error) {
		if *svgDir == "" {
			return
		}
		path := *svgDir + "/" + name
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := render(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	switch *fig {
	case 2:
		res := experiments.Fig2(sc, *seed)
		fmt.Print(res)
		writeSVG("fig2_longitudinal.svg", res.WriteLongitudinalSVG)
		writeSVG("fig2_transverse.svg", res.WriteTransverseSVG)
	case 3:
		res := experiments.Fig3(sc, *seed)
		fmt.Print(res)
		writeSVG("fig3_convergence.svg", res.WriteSVG)
	default:
		log.Printf("unknown figure %d (validation covers figures 2 and 3)", *fig)
		flag.Usage()
		os.Exit(2)
	}
}
