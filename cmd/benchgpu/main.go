// Command benchgpu measures the simulated GPU device's replay engines
// against each other: the zero-allocation streaming engine (the default)
// versus the seed oracle engine it replaced, over representative kernel
// workloads at a given grid scale. Costs are normalised to microseconds
// per simulated warp instruction, the engines' Metrics are cross-checked
// for exact equality on every measured launch, and the streaming engine's
// steady-state heap allocations per Device.Run are counted. `make
// bench-gpu-json` runs the committed 128x128-scale configuration and
// refreshes BENCH_gpu.json; `make bench-gpu` runs the small -check
// variant in CI, which enforces the speedup floor and the zero-allocation
// contract through the same self-check logic the obstool gate applies to
// the committed file.
//
// Usage:
//
//	benchgpu -grid 128 -reps 5 -out BENCH_gpu.json
//	benchgpu -grid 48 -reps 3 -check -min-speedup 1.2 -out /tmp/bench_gpu_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"beamdyn/internal/gpusim"
	"beamdyn/internal/obs/analysis"
)

// workload is one representative kernel shape. The bodies mirror the
// access patterns the beam-dynamics kernels produce: coalesced stride-1
// sweeps over grid moments, trip-count divergence from adaptive
// quadrature's per-point refinement depth, scattered gathers into the
// retarded history, and broadcast-heavy reduction phases.
type workload struct {
	name   string
	kernel gpusim.Kernel
}

func workloads(grid int) []workload {
	return []workload{
		{"stride1-moments", func(l *gpusim.Lane, b, th int) {
			base := uintptr(b*grid*64 + th*8)
			for u := 0; u < 4; u++ {
				l.Begin(0)
				l.Flops(12)
				l.Load(base + uintptr(u*grid*8))
				l.Load(base + uintptr((u+1)*grid*8))
				l.Store(base + uintptr(u*grid*8))
			}
		}},
		{"divergent-cone", func(l *gpusim.Lane, b, th int) {
			depth := (b*31 + th*7) % 6
			for u := 0; u <= depth; u++ {
				l.Begin(u % 2)
				l.Flops(20)
				l.Load(uintptr(b*4096 + th*8 + u*1024))
			}
			l.Begin(8)
			l.Store(uintptr(b*grid*8 + th*8))
		}},
		{"scattered-gather", func(l *gpusim.Lane, b, th int) {
			l.Begin(0)
			l.Flops(6)
			for u := 0; u < 3; u++ {
				idx := (th*2654435761 + u*40503 + b*97) % (grid * grid)
				l.Load(uintptr(idx * 8))
			}
			l.Store(uintptr(b*grid*8 + th*8))
		}},
		{"broadcast-reduce", func(l *gpusim.Lane, b, th int) {
			l.Begin(0)
			l.Flops(4)
			l.Load(uintptr(b * 8)) // per-block constant: whole warp, one line
			l.Load(uintptr(th * 8))
			l.Begin(1)
			l.Flops(8)
			l.Store(uintptr(b*grid*8 + th*8))
		}},
	}
}

// launchOf sizes one workload at the grid scale: grid^2 lanes in
// 256-thread blocks (the paper's launch shape for NxN field grids).
func launchOf(w workload, grid int) gpusim.Launch {
	threads := grid * grid
	tpb := 256
	if threads < tpb {
		tpb = threads
	}
	return gpusim.Launch{
		Name:            w.name,
		Blocks:          (threads + tpb - 1) / tpb,
		ThreadsPerBlock: tpb,
		Kernel:          w.kernel,
	}
}

// report is the BENCH_gpu.json schema; the gate-facing fields mirror
// analysis.GPUBaseline.
type report struct {
	Benchmark           string                  `json:"benchmark"`
	Date                string                  `json:"date"`
	Grid                int                     `json:"grid"`
	Reps                int                     `json:"reps"`
	GoMaxProcs          int                     `json:"gomaxprocs"`
	NumCPU              int                     `json:"num_cpu"`
	WarpInsts           uint64                  `json:"warp_insts"`
	OracleUsPerWarpInst float64                 `json:"oracle_us_per_warp_inst"`
	StreamUsPerWarpInst float64                 `json:"streaming_us_per_warp_inst"`
	SpeedupVsSeed       float64                 `json:"speedup_vs_seed"`
	AllocsPerLaunch     float64                 `json:"allocs_per_launch"`
	Launches            []analysis.GPULaunchRow `json:"launches"`
	MinSpeedup          float64                 `json:"min_speedup"`
	MaxAllocsPerLaunch  float64                 `json:"max_allocs_per_launch"`
}

// measure times one launch on both engines, interleaving reps so machine
// noise hits both alike, and returns each engine's fastest wall pass. Each
// engine replays on its own warm device — devices replay the identical
// launch every rep, so the cache steady state is the workload's own.
func measure(l gpusim.Launch, reps int) (oracleSec, streamSec float64, warpInsts uint64) {
	oracle := gpusim.New(gpusim.KeplerK40())
	oracle.SetEngine(gpusim.EngineOracle)
	stream := gpusim.New(gpusim.KeplerK40())

	mo := oracle.Run(l) // warm-up, and the equivalence cross-check
	ms := stream.Run(l)
	if mo != ms {
		log.Fatalf("%s: engines disagree on warm-up launch\noracle:    %+v\nstreaming: %+v", l.Name, mo, ms)
	}
	warpInsts = ms.IssuedWarpInsts

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	oracleSec, streamSec = math.Inf(1), math.Inf(1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		oracle.Run(l)
		if wall := time.Since(t0).Seconds(); wall < oracleSec {
			oracleSec = wall
		}
		t0 = time.Now()
		stream.Run(l)
		if wall := time.Since(t0).Seconds(); wall < streamSec {
			streamSec = wall
		}
	}
	return oracleSec, streamSec, warpInsts
}

// measureAllocs reports the streaming engine's steady-state heap
// allocations per Device.Run across the workload set (the committed
// zero-allocation contract).
func measureAllocs(launches []gpusim.Launch) float64 {
	d := gpusim.New(gpusim.KeplerK40())
	for _, l := range launches { // size arenas and goroutine scratch
		d.Run(l)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const reps = 5
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for r := 0; r < reps; r++ {
		for _, l := range launches {
			d.Run(l)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(reps*len(launches))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgpu: ")
	var (
		grid       = flag.Int("grid", 128, "grid scale (grid^2 simulated lanes per launch)")
		reps       = flag.Int("reps", 5, "measurement repetitions")
		out        = flag.String("out", "BENCH_gpu.json", "output file")
		check      = flag.Bool("check", false, "enforce -min-speedup and -max-allocs (exit 1 on failure)")
		minSpeedup = flag.Float64("min-speedup", 2, "required streaming-vs-oracle replay speedup in -check mode")
		maxAllocs  = flag.Float64("max-allocs", 0, "allowed steady-state allocations per Device.Run in -check mode")
	)
	flag.Parse()

	rep := report{
		Benchmark:          analysis.GPUBenchmarkName,
		Date:               time.Now().UTC().Format("2006-01-02"),
		Grid:               *grid,
		Reps:               *reps,
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		MinSpeedup:         *minSpeedup,
		MaxAllocsPerLaunch: *maxAllocs,
	}

	var launches []gpusim.Launch
	var oracleTotal, streamTotal float64
	for _, w := range workloads(*grid) {
		l := launchOf(w, *grid)
		launches = append(launches, l)
		oSec, sSec, insts := measure(l, *reps)
		row := analysis.GPULaunchRow{
			Name:                w.name,
			WarpInsts:           insts,
			OracleUsPerWarpInst: oSec * 1e6 / float64(insts),
			StreamUsPerWarpInst: sSec * 1e6 / float64(insts),
			Speedup:             oSec / sSec,
		}
		rep.Launches = append(rep.Launches, row)
		rep.WarpInsts += insts
		oracleTotal += oSec
		streamTotal += sSec
		fmt.Printf("%-18s %9d winsts  oracle=%.4fus/wi streaming=%.4fus/wi  %.2fx\n",
			w.name, insts, row.OracleUsPerWarpInst, row.StreamUsPerWarpInst, row.Speedup)
	}
	rep.OracleUsPerWarpInst = oracleTotal * 1e6 / float64(rep.WarpInsts)
	rep.StreamUsPerWarpInst = streamTotal * 1e6 / float64(rep.WarpInsts)
	rep.SpeedupVsSeed = oracleTotal / streamTotal
	rep.AllocsPerLaunch = measureAllocs(launches)
	fmt.Printf("total: %d warp insts, oracle=%.4fus/wi streaming=%.4fus/wi speedup=%.2fx allocs=%.3f/launch\n",
		rep.WarpInsts, rep.OracleUsPerWarpInst, rep.StreamUsPerWarpInst, rep.SpeedupVsSeed, rep.AllocsPerLaunch)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *check {
		// The floors run through the same self-check logic the obstool gate
		// applies to the committed file, so a report this binary writes can
		// never pass here and fail there.
		checks := analysis.CheckGPUBaseline(baselineOf(rep))
		fmt.Print(analysis.RPCheckTable(checks))
		if !analysis.RPChecksOK(checks) {
			os.Exit(1)
		}
		fmt.Println("check passed")
	}
}

// baselineOf maps the report onto the gate's baseline schema.
func baselineOf(rep report) analysis.GPUBaseline {
	return analysis.GPUBaseline{
		Benchmark:           rep.Benchmark,
		Grid:                rep.Grid,
		OracleUsPerWarpInst: rep.OracleUsPerWarpInst,
		StreamUsPerWarpInst: rep.StreamUsPerWarpInst,
		SpeedupVsSeed:       rep.SpeedupVsSeed,
		AllocsPerLaunch:     rep.AllocsPerLaunch,
		Launches:            rep.Launches,
		MinSpeedup:          rep.MinSpeedup,
		MaxAllocsPerLaunch:  rep.MaxAllocsPerLaunch,
	}
}
