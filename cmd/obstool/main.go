// Command obstool analyzes the JSONL span traces beamsim -trace writes
// and enforces the perf regression gate that keeps the committed
// BENCH_host.json honest.
//
// Subcommands:
//
//	obstool summary trace.jsonl
//	    Per-span aggregation: count, total, mean, p50/p95/p99 (histogram
//	    quantile estimation over exponential duration buckets), max. When
//	    the trace carries host reference solves, appends the rp solver
//	    cache section (tile-scratch and radial-memo reuse rates).
//
//	obstool timeline trace.jsonl
//	    Per-step span timeline with proportional duration bars.
//
//	obstool fleet trace.jsonl
//	    Fleet scheduler accounting: bands dispatched/stolen/retried and
//	    per-device busy time, mean utilization and lifecycle states.
//
//	obstool tree trace.jsonl [-job ID]
//	    Causal span-tree reconstruction from trace/span/parent IDs: per
//	    trace, the span hierarchy collapsed by name at each depth with
//	    self/total time, orphan detection, and the critical path of the
//	    longest root. Reads leniently — a truncated final line (a run
//	    killed mid-write) is dropped with a warning instead of failing.
//	    With -job, keeps only the spans carrying that job's baggage.
//
//	obstool predictor trace.jsonl [-spike-factor 3] [-min-rate 0.001]
//	    Predictor-quality series with fallback-spike detection, plus the
//	    rp solver cache section when the trace carries reference solves.
//
//	obstool diff old.jsonl new.jsonl [-max-regress 10%]
//	    Compare two runs per span name. With -max-regress, exit 1 when
//	    any shared span's mean regressed beyond the threshold.
//
//	obstool postmortem bundle-dir
//	    Triage summary of a post-mortem bundle dumped by beamsim
//	    -postmortem-dir: the dump reason and trigger alert, the alert
//	    firing log, and the flight-recorder trace's per-span aggregation.
//
//	obstool gate budget.json [budget.json ...] trace.jsonl [-max-regress 10%]
//	    Check the trace against one or more committed budget files —
//	    BENCH_host.json gates the kernels' per-phase host costs,
//	    BENCH_rp.json gates the host reference solver's per-step cost,
//	    BENCH_jobs.json gates the job control plane's queue-wait p95 —
//	    and exit 1 on regression. Budget files are dispatched on their
//	    "benchmark" tag. `make obs-gate` runs this in CI on short
//	    deterministic runs.
//
// Exit codes: 0 ok, 1 regression detected, 2 usage or input error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"beamdyn/internal/obs"
	"beamdyn/internal/obs/analysis"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: obstool <command> [flags] <args>

commands:
  summary   trace.jsonl                  per-span aggregation (count, mean, p50/p95/p99, max)
  timeline  trace.jsonl                  per-step span timeline
  fleet     trace.jsonl                  per-device utilization and steal/retry accounting
  tree      trace.jsonl                  causal span tree with self/total time and critical path
  predictor trace.jsonl                  predictor quality series + fallback spike detection
  diff      old.jsonl new.jsonl          compare two runs per span name
  postmortem bundle-dir                  triage summary of a post-mortem bundle
  gate      budget.json [...] trace.jsonl  enforce perf budgets (exit 1 on regression);
                                         budgets: BENCH_host.json, BENCH_rp.json, BENCH_jobs.json

"-" reads a trace from stdin. Run "obstool <command> -h" for flags.
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "summary":
		runSummary(args)
	case "timeline":
		runTimeline(args)
	case "fleet":
		runFleet(args)
	case "tree":
		runTree(args)
	case "predictor":
		runPredictor(args)
	case "diff":
		runDiff(args)
	case "postmortem":
		runPostmortem(args)
	case "gate":
		runGate(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "obstool: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "obstool: %v\n", err)
	os.Exit(2)
}

// parseRegress accepts "10%", "0.1" or "10" (percent implied when >= 1).
func parseRegress(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad regression threshold %q (want e.g. 10%% or 0.1)", s)
	}
	if pct || v >= 1 {
		v /= 100
	}
	return v, nil
}

func newFlagSet(name, positional string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: obstool %s [flags] %s\nflags:\n", name, positional)
		fs.PrintDefaults()
	}
	return fs
}

// parseMixed parses the flag set allowing flags before or after the n
// positional arguments (the stdlib flag package stops at the first
// positional, which would reject "obstool gate base.json trace.jsonl
// -max-regress 10%").
func parseMixed(fs *flag.FlagSet, args []string, n int) []string {
	pos := collectMixed(fs, args)
	if len(pos) != n {
		fs.Usage()
		os.Exit(2)
	}
	return pos
}

// parseMixedAtLeast is parseMixed for commands with a variable positional
// tail (gate takes one or more budget files before the trace).
func parseMixedAtLeast(fs *flag.FlagSet, args []string, min int) []string {
	pos := collectMixed(fs, args)
	if len(pos) < min {
		fs.Usage()
		os.Exit(2)
	}
	return pos
}

func collectMixed(fs *flag.FlagSet, args []string) []string {
	var pos []string
	for {
		fs.Parse(args)
		args = fs.Args()
		if len(args) == 0 {
			return pos
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
}

// jobFlag registers the shared -job filter: keep only events carrying
// that job ID's baggage attr (control-plane traces stamp one on every
// descendant event of the job's trace).
func jobFlag(fs *flag.FlagSet) *string {
	return fs.String("job", "", "restrict to events carrying this job ID's baggage")
}

func filterJob(events []obs.Event, id string) []obs.Event {
	if id == "" {
		return events
	}
	out := analysis.FilterJob(events, id)
	if len(out) == 0 {
		fatal(fmt.Errorf("no events for job %q (is this a control-plane trace?)", id))
	}
	return out
}

func runSummary(args []string) {
	fs := newFlagSet("summary", "trace.jsonl")
	job := jobFlag(fs)
	path := parseMixed(fs, args, 1)[0]
	events, err := analysis.ReadTraceFile(path)
	if err != nil {
		fatal(err)
	}
	events = filterJob(events, *job)
	fmt.Print(analysis.SummaryTable(analysis.Aggregate(events, nil)))
	if t := analysis.RPCacheTable(analysis.RPCache(events)); t != "" {
		fmt.Print("\n" + t)
	}
}

func runTimeline(args []string) {
	fs := newFlagSet("timeline", "trace.jsonl")
	job := jobFlag(fs)
	path := parseMixed(fs, args, 1)[0]
	events, err := analysis.ReadTraceFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Print(analysis.TimelineTable(analysis.Timeline(filterJob(events, *job))))
}

func runFleet(args []string) {
	fs := newFlagSet("fleet", "trace.jsonl")
	job := jobFlag(fs)
	path := parseMixed(fs, args, 1)[0]
	events, err := analysis.ReadTraceFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Print(analysis.FleetStats(filterJob(events, *job)).Table())
}

func runTree(args []string) {
	fs := newFlagSet("tree", "trace.jsonl")
	job := jobFlag(fs)
	path := parseMixed(fs, args, 1)[0]
	events, dropped, err := analysis.ReadTraceFileLenient(path)
	if err != nil {
		fatal(err)
	}
	if dropped {
		fmt.Fprintln(os.Stderr, "obstool: dropped truncated final trace line (run killed mid-write?)")
	}
	events = filterJob(events, *job)
	trees := analysis.BuildTrees(events)
	if len(trees) == 0 {
		fatal(fmt.Errorf("no spans with trace context in %s (trace written before span IDs, or tracing off?)", path))
	}
	if t0, ok := analysis.TraceT0(events); ok {
		fmt.Printf("t0 %s\n", t0)
	}
	fmt.Print(analysis.TreeTable(trees))
}

func runPredictor(args []string) {
	fs := newFlagSet("predictor", "trace.jsonl")
	factor := fs.Float64("spike-factor", 3, "flag steps whose fallback rate exceeds this multiple of the run median")
	minRate := fs.Float64("min-rate", 0.001, "absolute fallback-rate floor below which nothing is a spike")
	path := parseMixed(fs, args, 1)[0]
	events, err := analysis.ReadTraceFile(path)
	if err != nil {
		fatal(err)
	}
	points := analysis.PredictorSeries(events)
	spikes := analysis.FallbackSpikes(points, *factor, *minRate)
	fmt.Print(analysis.PredictorTable(points, spikes))
	if t := analysis.RPCacheTable(analysis.RPCache(events)); t != "" {
		fmt.Print("\n" + t)
	}
	if len(spikes) > 0 {
		os.Exit(1)
	}
}

func runDiff(args []string) {
	fs := newFlagSet("diff", "old.jsonl new.jsonl")
	maxRegress := fs.String("max-regress", "", "fail (exit 1) when any shared span's mean regresses beyond this (e.g. 10%)")
	paths := parseMixed(fs, args, 2)
	oldEvents, err := analysis.ReadTraceFile(paths[0])
	if err != nil {
		fatal(err)
	}
	newEvents, err := analysis.ReadTraceFile(paths[1])
	if err != nil {
		fatal(err)
	}
	rows := analysis.Diff(oldEvents, newEvents, nil)
	fmt.Print(analysis.DiffTable(rows))
	if *maxRegress != "" {
		limit, err := parseRegress(*maxRegress)
		if err != nil {
			fatal(err)
		}
		if regs := analysis.Regressions(rows, limit); len(regs) > 0 {
			fmt.Printf("\n%d span(s) regressed beyond %s:\n", len(regs), *maxRegress)
			for _, r := range regs {
				fmt.Printf("  %-28s mean %+.1f%% (%.3fms -> %.3fms)\n",
					r.Name, 100*r.MeanDelta, r.OldMean*1e3, r.NewMean*1e3)
			}
			os.Exit(1)
		}
		fmt.Printf("\nno span regressed beyond %s\n", *maxRegress)
	}
}

func runPostmortem(args []string) {
	fs := newFlagSet("postmortem", "bundle-dir")
	dir := parseMixed(fs, args, 1)[0]
	pm, err := analysis.ReadPostmortem(dir)
	if err != nil {
		fatal(err)
	}
	fmt.Print(pm.Report())
}

func runGate(args []string) {
	fs := newFlagSet("gate", "budget.json [budget.json ...] trace.jsonl")
	maxRegress := fs.String("max-regress", "10%", "per-phase budget headroom over the baseline")
	paths := parseMixedAtLeast(fs, args, 2)
	budgets, tracePath := paths[:len(paths)-1], paths[len(paths)-1]
	events, err := analysis.ReadTraceFile(tracePath)
	if err != nil {
		fatal(err)
	}
	limit, err := parseRegress(*maxRegress)
	if err != nil {
		fatal(err)
	}
	stats := analysis.Aggregate(events, nil)
	var all []analysis.GateResult
	checksOK := true
	for _, bp := range budgets {
		kind, err := analysis.ProbeBenchmark(bp)
		if err != nil {
			fatal(err)
		}
		var results []analysis.GateResult
		switch kind {
		case analysis.RPBenchmarkName:
			base, err := analysis.ReadRPBaseline(bp)
			if err != nil {
				fatal(err)
			}
			// Committed-floor self-checks: the speedup floor and the
			// per-worker scaling efficiency recorded in the baseline file.
			if checks := analysis.CheckRPBaseline(base); len(checks) > 0 {
				fmt.Printf("%s self-checks:\n%s\n", bp, analysis.RPCheckTable(checks))
				if !analysis.RPChecksOK(checks) {
					checksOK = false
				}
			}
			if results, err = analysis.GateRP(base, stats, limit); err != nil {
				fatal(fmt.Errorf("%s: %w", bp, err))
			}
		case analysis.GPUBenchmarkName:
			base, err := analysis.ReadGPUBaseline(bp)
			if err != nil {
				fatal(err)
			}
			// The GPU replay budget gates purely on its committed-floor
			// self-checks (replay speedup vs the seed engine, allocations
			// per launch): device replay has no trace span to re-measure
			// here, so results stay empty.
			checks := analysis.CheckGPUBaseline(base)
			fmt.Printf("%s self-checks:\n%s\n", bp, analysis.RPCheckTable(checks))
			if !analysis.RPChecksOK(checks) {
				checksOK = false
			}
		case analysis.JobsBenchmarkName:
			base, err := analysis.ReadJobsBaseline(bp)
			if err != nil {
				fatal(err)
			}
			if results, err = analysis.GateJobs(base, stats, limit); err != nil {
				fatal(fmt.Errorf("%s: %w", bp, err))
			}
		default: // host-phases (legacy files carry no benchmark tag)
			base, err := analysis.ReadBaseline(bp)
			if err != nil {
				fatal(err)
			}
			if results, err = analysis.Gate(base, stats, limit); err != nil {
				fatal(fmt.Errorf("%s: %w", bp, err))
			}
		}
		all = append(all, results...)
	}
	fmt.Print(analysis.GateTable(all))
	if !analysis.GateOK(all) || !checksOK {
		fmt.Println("\nperf regression gate FAILED")
		os.Exit(1)
	}
	fmt.Println("\nperf regression gate passed")
}
