// Command benchtables regenerates the paper's evaluation tables and the
// roofline figure on the simulated K40, plus the ablation studies.
//
// Usage:
//
//	benchtables -table 1 -scale medium
//	benchtables -table 2 -scale full
//	benchtables -fig 4
//	benchtables -ablations
//	benchtables -all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"beamdyn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")
	var (
		table     = flag.Int("table", 0, "table to regenerate: 1 or 2")
		fig       = flag.Int("fig", 0, "figure to regenerate: 4")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		scaling   = flag.Bool("scaling", false, "run the multi-GPU strong-scaling study")
		safetynet = flag.Bool("safetynet", false, "run the per-step safety-net-rate study")
		crossdev  = flag.Bool("crossdevice", false, "run the K40-vs-P100 cross-device comparison")
		all       = flag.Bool("all", false, "run every table, figure and ablation")
		scale     = flag.String("scale", "medium", "experiment scale: quick | medium | full")
		seed      = flag.Uint64("seed", 1, "Monte-Carlo seed")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		svgDir    = flag.String("svg", "", "also write figure 4 as SVG into this directory")
	)
	flag.Parse()

	sc, ok := map[string]experiments.Scale{
		"quick":  experiments.Quick,
		"medium": experiments.Medium,
		"full":   experiments.Full,
	}[*scale]
	if !ok {
		log.Printf("unknown scale %q", *scale)
		flag.Usage()
		os.Exit(2)
	}

	emit := func(result interface{ String() string }) {
		if *csvOut {
			if err := experiments.WriteCSV(os.Stdout, result); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Print(result.(fmt.Stringer))
		fmt.Println()
	}
	ran := false
	if *table == 1 || *all {
		emit(experiments.Table1(sc, *seed))
		ran = true
	}
	if *table == 2 || *all {
		t2 := experiments.Table2(sc, *seed)
		emit(t2)
		if !*csvOut {
			fmt.Printf("max Heuristic/Predictive speedup: %.2fx\n\n", t2.MaxSpeedup())
		}
		ran = true
	}
	if *fig == 4 || *all {
		f4 := experiments.Fig4(sc, *seed)
		emit(f4)
		if *svgDir != "" {
			path := *svgDir + "/fig4_roofline.svg"
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := f4.WriteSVG(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
		ran = true
	}
	if *ablations || *all {
		for _, a := range experiments.AllAblations(sc, *seed) {
			emit(a)
		}
		ran = true
	}
	if *scaling || *all {
		fmt.Print(experiments.Scaling(experiments.PredictiveRP, []int{1, 2, 4, 8}, sc, *seed))
		fmt.Println()
		ran = true
	}
	if *crossdev || *all {
		fmt.Print(experiments.CrossDevice(sc, *seed))
		fmt.Println()
		ran = true
	}
	if *safetynet || *all {
		for _, k := range []experiments.KernelName{experiments.HeuristicRP, experiments.PredictiveRP} {
			fmt.Print(experiments.SafetyNet(k, 6, sc, *seed))
			fmt.Println()
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
