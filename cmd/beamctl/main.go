// Command beamctl is the thin client of the beamsim job control plane
// ("beamsim serve"): it submits JobSpec files, polls status, streams the
// per-job event log, cancels, and fetches results over the HTTP/JSON API.
//
// Usage:
//
//	beamctl [-addr host:port] [-json] <command> [args]
//
//	beamctl submit spec.json [spec.json ...]   submit jobs, print their ids
//	beamctl list                               list every job
//	beamctl status j-000001                    one job's status
//	beamctl watch j-000001                     stream events until terminal
//	beamctl cancel j-000001                    cancel a job
//	beamctl result j-000001                    fetch the final grid (JSON)
//
// -json switches the human-readable output to raw API JSON for scripting;
// result always prints JSON. Exit codes: 0 ok, 1 the watched/fetched job
// failed, 2 usage or transport error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"beamdyn/internal/jobs"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: beamctl [-addr host:port] [-json] <command> [args]

commands:
  submit spec.json [...]   submit JobSpec files, print the assigned ids
  list                     list every job
  status <id>              one job's status
  watch <id>               stream the job's events (SSE) until it finishes
  cancel <id>              cancel a queued or running job
  result <id>              fetch the final potential grid (JSON)
`)
}

func main() {
	addr := flag.String("addr", "localhost:8080", "control plane address (host:port)")
	asJSON := flag.Bool("json", false, "print raw API JSON instead of human-readable output")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	c := &client{base: "http://" + *addr, json: *asJSON}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = c.submit(args)
	case "list":
		err = c.list(args)
	case "status":
		err = c.status(args)
	case "watch":
		err = c.watch(args)
	case "cancel":
		err = c.cancel(args)
	case "result":
		err = c.result(args)
	default:
		fmt.Fprintf(os.Stderr, "beamctl: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "beamctl: %v\n", err)
		os.Exit(2)
	}
}

type client struct {
	base string
	json bool
}

// do performs one API call and decodes the JSON response into out,
// translating non-2xx responses into their {"error": ...} body.
func (c *client) do(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

func (c *client) submit(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("submit wants at least one spec file")
	}
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var st jobs.Status
		if err := c.do(http.MethodPost, "/jobs", bytes.NewReader(data), &st); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if c.json {
			printJSON(st)
		} else {
			fmt.Printf("%s  %s (%s, priority %d)\n", st.ID, st.Name, st.State, st.Priority)
		}
	}
	return nil
}

func (c *client) list(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("list takes no arguments")
	}
	var sts []jobs.Status
	if err := c.do(http.MethodGet, "/jobs", nil, &sts); err != nil {
		return err
	}
	if c.json {
		printJSON(sts)
		return nil
	}
	fmt.Printf("%-10s %-24s %-10s %-9s %4s %9s %8s\n",
		"id", "name", "state", "tenant", "prio", "step", "attempts")
	for _, st := range sts {
		fmt.Printf("%-10s %-24s %-10s %-9s %4d %4d/%-4d %8d\n",
			st.ID, st.Name, st.State, st.Tenant, st.Priority, st.Step, st.TargetStep, st.Attempts)
	}
	return nil
}

func (c *client) status(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("status wants exactly one job id")
	}
	var st jobs.Status
	if err := c.do(http.MethodGet, "/jobs/"+args[0], nil, &st); err != nil {
		return err
	}
	if c.json {
		printJSON(st)
		return nil
	}
	printStatus(st)
	return nil
}

func printStatus(st jobs.Status) {
	fmt.Printf("%s  %s\n", st.ID, st.Name)
	fmt.Printf("  state:    %s\n", st.State)
	fmt.Printf("  tenant:   %s (priority %d)\n", st.Tenant, st.Priority)
	fmt.Printf("  step:     %d / %d\n", st.Step, st.TargetStep)
	fmt.Printf("  attempts: %d (workers %v)\n", st.Attempts, st.Workers)
	fmt.Printf("  waited:   %.3fs  ran: %.3fs\n", st.QueueWaitSec, st.RunSec)
	if st.TraceID != "" {
		fmt.Printf("  trace:    %s (obstool tree -job %s <trace>)\n", st.TraceID, st.ID)
	}
	if st.Error != "" {
		fmt.Printf("  error:    %s\n", st.Error)
	}
	if st.HasResult {
		fmt.Printf("  result:   ready (beamctl result %s)\n", st.ID)
	}
}

// watch streams the job's SSE event feed, printing each event, and exits 1
// when the job ends FAILED.
func (c *client) watch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("watch wants exactly one job id")
	}
	id := args[0]
	resp, err := http.Get(c.base + "/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	last := jobs.State("")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("bad event %q: %w", data, err)
		}
		if c.json {
			fmt.Println(data)
		} else {
			printEvent(ev)
		}
		if ev.Type == "state" {
			last = ev.State
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if last == jobs.StateFailed {
		os.Exit(1)
	}
	return nil
}

func printEvent(ev jobs.Event) {
	ts := ev.TS.Format(time.TimeOnly)
	switch ev.Type {
	case "state":
		fmt.Printf("%s  %-10s %s\n", ts, ev.State, ev.Msg)
	case "progress":
		fmt.Printf("%s  step %4d  sigma=(%.3g, %.3g)\n", ts, ev.Step, ev.SigmaX, ev.SigmaY)
	default:
		fmt.Printf("%s  %-10s step %d %s\n", ts, ev.Type, ev.Step, ev.Msg)
	}
}

func (c *client) cancel(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel wants exactly one job id")
	}
	var st jobs.Status
	if err := c.do(http.MethodDelete, "/jobs/"+args[0], nil, &st); err != nil {
		return err
	}
	if c.json {
		printJSON(st)
	} else {
		fmt.Printf("%s cancel requested (state %s)\n", st.ID, st.State)
	}
	return nil
}

func (c *client) result(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("result wants exactly one job id")
	}
	var res json.RawMessage
	if err := c.do(http.MethodGet, "/jobs/"+args[0]+"/result", nil, &res); err != nil {
		return err
	}
	os.Stdout.Write(res)
	fmt.Println()
	return nil
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // stdout
}
