package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"beamdyn/internal/jobs"
	"beamdyn/internal/obs"
	"beamdyn/internal/obs/export"
	"beamdyn/internal/obs/flight"
	"beamdyn/internal/obs/runtimecol"
)

// runServe is the "beamsim serve" mode: a long-running job control plane
// serving the jobs API alongside the telemetry endpoints.
//
//	beamsim serve -http :8080 -workers 2
//	beamsim serve -oneshot -submit a.json,b.json -trace serve.jsonl
//
// -submit preloads JobSpec files at startup; with -oneshot the process
// exits once those jobs finish (the CI harness for the scenario catalog
// and the queue-wait perf gate), otherwise it serves until killed.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: beamsim serve [flags]\nflags:\n")
		fs.PrintDefaults()
	}
	var (
		httpAddr        = fs.String("http", ":8080", "serve the jobs API + telemetry on this address (empty disables HTTP; useful with -oneshot)")
		workers         = fs.Int("workers", 2, "dispatch workers (jobs running concurrently)")
		maxQueued       = fs.Int("max-queued", 16, "per-tenant queued-job quota (0 = unlimited)")
		checkpointEvery = fs.Int("checkpoint-every", 1, "checkpoint running jobs every N steps (<0 disables periodic checkpoints)")
		maxResumes      = fs.Int("max-resumes", 3, "checkpoint/resume episodes allowed per job before it fails")
		flightDepth     = fs.Int("flight-depth", flight.DefaultDepth, "flight recorder depth (0 disables)")
		traceOut        = fs.String("trace", "", "write the control plane's JSONL span/event trace to this file")
		submit          = fs.String("submit", "", "comma-separated JobSpec files to submit at startup")
		oneshot         = fs.Bool("oneshot", false, "exit after the -submit jobs finish (requires -submit)")
		staleAfter      = fs.Duration("stale-after", 0*time.Second, "/healthz reports stalled (503) when no step completes within this window (0 disables)")
		node            = fs.String("node", "", "node label stamped as baggage on every job's traced spans")
		runtimeInt      = fs.Duration("runtime-interval", time.Second, "sample Go runtime telemetry (go_* gauges) at this period (0 disables)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		log.Fatalf("serve: unexpected argument %q", fs.Arg(0))
	}
	if *oneshot && *submit == "" {
		log.Fatal("serve: -oneshot needs -submit")
	}
	if *httpAddr == "" && *submit == "" {
		log.Fatal("serve: nothing to do — give -http and/or -submit")
	}

	observer := obs.New()
	var traceSink *obs.JSONLSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		traceSink = obs.NewJSONLSink(f)
	}
	var fwd obs.Sink
	if traceSink != nil {
		fwd = traceSink
	}
	if *flightDepth > 0 {
		observer.Trace = obs.NewTracer(flight.New(*flightDepth, fwd))
	} else if fwd != nil {
		observer.Trace = obs.NewTracer(fwd)
	}

	var rtc *runtimecol.Collector
	if *runtimeInt > 0 {
		rtc = runtimecol.Start(observer.Reg, *runtimeInt)
	}

	js := jobs.New(jobs.Config{
		Workers:            *workers,
		Obs:                observer,
		Node:               *node,
		MaxQueuedPerTenant: *maxQueued,
		CheckpointEvery:    *checkpointEvery,
		MaxResumes:         *maxResumes,
	})

	if *httpAddr != "" {
		srv := &export.Server{Obs: observer, StaleAfter: *staleAfter}
		srv.Mount("/jobs", js.Handler())
		srv.Mount("/jobs/", js.Handler())
		_, addr, err := srv.Start(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("control plane: http://%s (/jobs /metrics /snapshot.json /healthz)\n", addr)
	}

	var submitted []*jobs.Job
	if *submit != "" {
		for _, path := range strings.Split(*submit, ",") {
			sp, err := jobs.LoadSpec(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			j, err := js.Submit(sp)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			fmt.Printf("submitted %s  %s\n", j.ID, sp.Name)
			submitted = append(submitted, j)
		}
	}

	if !*oneshot {
		select {} // serve until killed
	}

	failed := 0
	for _, j := range submitted {
		<-j.Done()
		st := j.Status()
		line := fmt.Sprintf("%s  %-24s %-9s attempts=%d wait=%.3fs run=%.3fs",
			j.ID, st.Name, st.State, st.Attempts, st.QueueWaitSec, st.RunSec)
		if res := j.Result(); res != nil {
			line += fmt.Sprintf(" sha256=%s", res.SHA256[:12])
		}
		if st.Error != "" {
			line += fmt.Sprintf(" error=%q", st.Error)
			failed++
		}
		fmt.Println(line)
	}
	js.Close()
	rtc.Stop()
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			log.Fatalf("trace sink: %v", err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
