// Command beamsim runs a full beam-dynamics simulation (the four-step loop
// of the paper's Figure 1) with a selectable compute-potentials kernel and
// prints per-step simulated-GPU profiler metrics.
//
// Usage:
//
//	beamsim -n 100000 -grid 64 -steps 12 -kernel predictive \
//	        -trace run.jsonl -metrics run.json -obs-interval 2
//
// The -trace/-metrics/-obs-interval flags enable the telemetry layer (see
// the Observability section of README.md): a JSONL span trace of every
// loop stage and kernel sub-phase, an end-of-run metrics snapshot with the
// per-step predictor-quality series ("-metrics -" prints it to stdout),
// and a periodic one-line summary. Adding "-http :8080" serves the live
// telemetry over HTTP while the run advances: /metrics (Prometheus text
// exposition), /snapshot.json, /healthz (step liveness + fleet device
// states) and /debug/pprof. Traces feed the offline obstool analyzer
// (summary, timeline, fleet, predictor, diff, gate).
//
// Multi-device runs: -devices N splits the grid statically (one band per
// device); adding -fleet schedules bands dynamically through the fleet
// manager (over-decomposition, cost-predicted placement, work stealing,
// failure retry), and -inject scripts health events against it:
//
//	beamsim -devices 4 -fleet -inject "fail:dev=1,step=9,after=2" -steps 6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"beamdyn"
	"beamdyn/internal/diagnostics"
	"beamdyn/internal/fleet"
	"beamdyn/internal/gpusim"
	"beamdyn/internal/obs"
	"beamdyn/internal/obs/export"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("beamsim: ")
	var (
		n       = flag.Int("n", 100000, "number of macro-particles")
		nx      = flag.Int("grid", 64, "grid resolution (NxN)")
		steps   = flag.Int("steps", 6, "time steps to run after warm-up")
		kernel  = flag.String("kernel", "predictive", "kernel: twophase | heuristic | predictive | reference")
		kappa   = flag.Int("kappa", 6, "retardation depth in subregions")
		tol     = flag.Float64("tol", 1e-8, "rp-integral error tolerance")
		seed    = flag.Uint64("seed", 1, "Monte-Carlo seed")
		dynamic = flag.Bool("dynamic", false, "let the bunch respond to its self-forces (default: rigid)")
		profile = flag.Bool("profile", false, "print an nvprof-style per-kernel summary at the end")
		diag    = flag.Bool("diag", false, "print beam diagnostics (emittance, Twiss, profile sparkline) each step")
		load    = flag.String("load", "", "resume from a checkpoint file")
		save    = flag.String("save", "", "write a checkpoint file at the end")

		hostWorkers = flag.Int("host-workers", 0, "host-side worker count for the kernels' predict/cluster/train phases (0 = GOMAXPROCS; results are identical for any value)")

		devices   = flag.Int("devices", 1, "number of simulated devices")
		fleetMode = flag.Bool("fleet", false, "schedule row-bands dynamically across the devices via the fleet manager")
		inject    = flag.String("inject", "", "scripted fleet health events, e.g. \"fail:dev=1,step=9,after=2;slow:dev=2,step=8,factor=3,until=12\" (implies -fleet)")

		traceOut    = flag.String("trace", "", "write a JSONL span/event trace to this file")
		metricsOut  = flag.String("metrics", "", "write an end-of-run metrics snapshot (JSON) to this file (\"-\" for stdout)")
		obsInterval = flag.Int("obs-interval", 0, "print a predictor-quality summary every N steps (0 disables)")
		httpAddr    = flag.String("http", "", "serve live telemetry on this address (e.g. :8080): /metrics, /snapshot.json, /healthz, /debug/pprof")
		staleAfter  = flag.Duration("stale-after", 30*time.Second, "with -http, /healthz reports stalled (503) when no step completes within this window (0 disables)")
	)
	flag.Parse()

	var sim *beamdyn.Simulation
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		sim, err = beamdyn.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at step %d\n", *load, sim.Step)
	} else {
		cfg := beamdyn.DefaultConfig()
		cfg.Beam.NumParticles = *n
		cfg.NX, cfg.NY = *nx, *nx
		cfg.Kappa = *kappa
		cfg.Tol = *tol
		cfg.Seed = *seed
		cfg.Rigid = !*dynamic
		sim = beamdyn.New(cfg)
	}
	sim.Cfg.HostWorkers = *hostWorkers
	if *inject != "" {
		*fleetMode = true
	}
	if *devices < 1 {
		log.Fatalf("-devices %d: need at least one device", *devices)
	}
	prof := gpusim.NewProfiler()

	// Telemetry: one observer feeds the trace sink, the metrics registry
	// (including the simulated-GPU counters via the device recorder) and
	// the predictor-quality series. Fleet runs always get an observer so
	// the end-of-run snapshot table carries the fleet counters (bands
	// dispatched/stolen/retried, device state transitions).
	var (
		observer  *obs.Observer
		traceSink *obs.JSONLSink
	)
	if *traceOut != "" || *metricsOut != "" || *obsInterval > 0 || *fleetMode || *httpAddr != "" {
		observer = beamdyn.NewObserver()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			// The sink owns the file: its Close flushes and closes it.
			traceSink = obs.NewJSONLSink(f)
			observer.Trace = obs.NewTracer(traceSink)
		}
		sim.Obs = observer
	}

	var ksel beamdyn.Kernel
	switch *kernel {
	case "twophase":
		ksel = beamdyn.TwoPhaseRP
	case "heuristic":
		ksel = beamdyn.HeuristicRP
	case "predictive":
		ksel = beamdyn.PredictiveRP
	case "reference":
		if *fleetMode || *devices > 1 {
			log.Fatal("-kernel reference runs on the host; it cannot drive -devices or -fleet")
		}
	default:
		log.Printf("unknown kernel %q", *kernel)
		flag.Usage()
		os.Exit(2)
	}

	newDevice := func(d int) *gpusim.Device {
		dev := beamdyn.NewDevice(beamdyn.KeplerK40())
		dev.SetLabel(fmt.Sprintf("dev%d", d))
		if *profile {
			dev.AttachProfiler(prof)
		}
		if observer != nil {
			dev.AttachRecorder(observer.GPURecorder())
		}
		return dev
	}

	var fl *fleet.Fleet
	var mgr fleet.Manager
	switch {
	case *kernel == "reference":
		// Host reference solver: sim.Algo stays nil.
	case *fleetMode:
		devs := make([]*gpusim.Device, *devices)
		for d := range devs {
			devs[d] = newDevice(d)
		}
		if *inject != "" {
			events, err := fleet.ParseEvents(*inject)
			if err != nil {
				log.Fatal(err)
			}
			mgr = fleet.NewInjectable(devs, events)
		} else {
			mgr = fleet.NewFixed(devs)
		}
		fl = fleet.New(fleet.Config{
			Manager: mgr,
			MakeKernel: func(id int, dev *gpusim.Device) beamdyn.Algorithm {
				return beamdyn.NewKernelOn(ksel, dev)
			},
			Seed: *seed,
		})
		sim.Algo = fl
	case *devices > 1:
		sim.Algo = beamdyn.NewMultiGPUOn(ksel, *devices, newDevice)
	default:
		sim.Algo = beamdyn.NewKernelOn(ksel, newDevice(0))
	}

	if *httpAddr != "" {
		srv := &export.Server{Obs: observer, StaleAfter: *staleAfter}
		if fl != nil {
			srv.Devices = func() []export.DeviceHealth {
				hs := fl.Health()
				out := make([]export.DeviceHealth, len(hs))
				for i, h := range hs {
					out[i] = export.DeviceHealth{
						Device:      h.Label,
						State:       h.State,
						Slowdown:    h.Slowdown,
						BusySec:     h.BusySec,
						Utilization: h.Utilization,
					}
				}
				return out
			}
		}
		_, addr, err := srv.Start(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry: http://%s (/metrics /snapshot.json /healthz /debug/pprof/)\n", addr)
	}

	mode := ""
	if *fleetMode {
		mode = fmt.Sprintf(" devices=%d (fleet)", *devices)
	} else if *devices > 1 {
		mode = fmt.Sprintf(" devices=%d (static bands)", *devices)
	}
	fmt.Printf("beamdyn simulation: N=%d grid=%dx%d kappa=%d tol=%g kernel=%s%s\n",
		sim.Cfg.Beam.NumParticles, sim.Cfg.NX, sim.Cfg.NY, sim.Cfg.Kappa, sim.Cfg.Tol, *kernel, mode)
	t0 := time.Now()
	sim.Warmup()
	fmt.Printf("warm-up (history filled through step %d): %.2fs\n",
		sim.Step, time.Since(t0).Seconds())

	for i := 0; i < *steps; i++ {
		t0 = time.Now()
		step := sim.Advance()
		wall := time.Since(t0).Seconds()
		st := sim.Ensemble.Stats()
		if sim.Last != nil {
			m := sim.Last.Metrics
			fmt.Printf("step %3d: gpu=%.4gs gflops=%.0f wee=%.1f%% gle=%.1f%% l1=%.1f%% fallback=%d host=%.3fs wall=%.2fs sigma=(%.3g, %.3g)\n",
				step, m.Time, m.Gflops(),
				100*m.WarpExecutionEfficiency(), 100*m.GlobalLoadEfficiency(),
				100*m.L1HitRate(), sim.Last.FallbackEntries,
				sim.Last.Host.Overhead(), wall, st.SigmaX, st.SigmaY)
		} else {
			fmt.Printf("step %3d: host reference, wall=%.2fs sigma=(%.3g, %.3g)\n",
				step, wall, st.SigmaX, st.SigmaY)
		}
		if *diag && sim.Ensemble.Len() > 0 {
			sum := diagnostics.Analyze(sim.Ensemble)
			fmt.Printf("          %s\n", sum)
			yprof := diagnostics.Project(sim.Ensemble, diagnostics.AxisY,
				sum.MeanY-5*sum.SigmaY, sum.MeanY+5*sum.SigmaY, 48)
			fmt.Printf("          |%s|\n", yprof.Sparkline())
		}
		if observer != nil && *obsInterval > 0 && (i+1)%*obsInterval == 0 {
			if s, ok := observer.Pred.Last(); ok {
				fmt.Printf("          obs: kernel=%s trained=%t fallback-rate=%.4f err(mean/p90/max)=%.3g/%.3g/%.3g train=%.3gs\n",
					s.Kernel, s.Trained, s.FallbackRate, s.ErrMean, s.ErrP90, s.ErrMax, s.TrainSec)
			}
			observer.Event("obs/interval", step, obs.I("interval", *obsInterval))
		}
	}
	if dropped := sim.Dropped(); dropped > 0 {
		fmt.Printf("warning: %d particle depositions fell outside the grid\n", dropped)
	}
	if *profile {
		fmt.Println("\nsimulated-GPU kernel summary:")
		fmt.Print(prof)
	}
	if fl != nil {
		st := fl.LastStats()
		fmt.Printf("\nfleet summary (last step): bands=%d stolen=%d retried=%d\n",
			st.Bands, st.Stolen, st.Retried)
		for d := 0; d < mgr.NumDevices(); d++ {
			fmt.Printf("  %-6s state=%-8s slowdown=%.3g busy=%.4gs util=%.0f%%\n",
				mgr.Device(d).Label(), mgr.State(d), mgr.Slowdown(d),
				st.Busy[d], 100*st.Utilization(d))
		}
		if trans := mgr.Transitions(); len(trans) > 0 {
			fmt.Println("  state transitions:")
			for _, tr := range trans {
				fmt.Printf("    step %3d: dev%d %s -> %s (%s)\n",
					tr.Step, tr.Device, tr.From, tr.To, tr.Reason)
			}
		}
	}
	if observer != nil {
		fmt.Println("\ntelemetry snapshot:")
		fmt.Print(observer.Reg.Snapshot().Table())
		if s, ok := observer.Pred.Last(); ok {
			fmt.Printf("predictor (last step %d): fallback-rate=%.4f err-mean=%.3g err-max=%.3g samples=%d\n",
				s.Step, s.FallbackRate, s.ErrMean, s.ErrMax, len(observer.Pred.Samples()))
		}
	}
	if *metricsOut == "-" {
		if err := observer.WriteSnapshot(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := observer.WriteSnapshot(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if traceSink != nil {
		// Close flushes the buffer, closes the file and surfaces the first
		// error hit anywhere along the run.
		if err := traceSink.Close(); err != nil {
			log.Fatalf("trace sink: %v", err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Save(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("checkpoint written to %s (step %d)\n", *save, sim.Step)
	}
}
