// Command beamsim runs a full beam-dynamics simulation (the four-step loop
// of the paper's Figure 1) with a selectable compute-potentials kernel and
// prints per-step simulated-GPU profiler metrics.
//
// Usage:
//
//	beamsim -n 100000 -grid 64 -steps 12 -kernel predictive \
//	        -trace run.jsonl -metrics run.json -obs-interval 2
//
// The -trace/-metrics/-obs-interval flags enable the telemetry layer (see
// the Observability section of README.md): a JSONL span trace of every
// loop stage and kernel sub-phase, an end-of-run metrics snapshot with the
// per-step predictor-quality series, and a periodic one-line summary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"beamdyn"
	"beamdyn/internal/diagnostics"
	"beamdyn/internal/gpusim"
	"beamdyn/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("beamsim: ")
	var (
		n       = flag.Int("n", 100000, "number of macro-particles")
		nx      = flag.Int("grid", 64, "grid resolution (NxN)")
		steps   = flag.Int("steps", 6, "time steps to run after warm-up")
		kernel  = flag.String("kernel", "predictive", "kernel: twophase | heuristic | predictive | reference")
		kappa   = flag.Int("kappa", 6, "retardation depth in subregions")
		tol     = flag.Float64("tol", 1e-8, "rp-integral error tolerance")
		seed    = flag.Uint64("seed", 1, "Monte-Carlo seed")
		dynamic = flag.Bool("dynamic", false, "let the bunch respond to its self-forces (default: rigid)")
		profile = flag.Bool("profile", false, "print an nvprof-style per-kernel summary at the end")
		diag    = flag.Bool("diag", false, "print beam diagnostics (emittance, Twiss, profile sparkline) each step")
		load    = flag.String("load", "", "resume from a checkpoint file")
		save    = flag.String("save", "", "write a checkpoint file at the end")

		traceOut    = flag.String("trace", "", "write a JSONL span/event trace to this file")
		metricsOut  = flag.String("metrics", "", "write an end-of-run metrics snapshot (JSON) to this file")
		obsInterval = flag.Int("obs-interval", 0, "print a predictor-quality summary every N steps (0 disables)")
	)
	flag.Parse()

	var sim *beamdyn.Simulation
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		sim, err = beamdyn.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at step %d\n", *load, sim.Step)
	} else {
		cfg := beamdyn.DefaultConfig()
		cfg.Beam.NumParticles = *n
		cfg.NX, cfg.NY = *nx, *nx
		cfg.Kappa = *kappa
		cfg.Tol = *tol
		cfg.Seed = *seed
		cfg.Rigid = !*dynamic
		sim = beamdyn.New(cfg)
	}
	dev := beamdyn.NewDevice(beamdyn.KeplerK40())
	prof := gpusim.NewProfiler()
	if *profile {
		dev.AttachProfiler(prof)
	}

	// Telemetry: one observer feeds the trace sink, the metrics registry
	// (including the simulated-GPU counters via the device recorder) and
	// the predictor-quality series.
	var (
		observer  *obs.Observer
		traceSink *obs.JSONLSink
		traceFile *os.File
	)
	if *traceOut != "" || *metricsOut != "" || *obsInterval > 0 {
		observer = beamdyn.NewObserver()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			traceFile = f
			traceSink = obs.NewJSONLSink(f)
			observer.Trace = obs.NewTracer(traceSink)
		}
		dev.AttachRecorder(observer.GPURecorder())
		sim.Obs = observer
	}

	switch *kernel {
	case "twophase":
		sim.Algo = beamdyn.NewKernelOn(beamdyn.TwoPhaseRP, dev)
	case "heuristic":
		sim.Algo = beamdyn.NewKernelOn(beamdyn.HeuristicRP, dev)
	case "predictive":
		sim.Algo = beamdyn.NewKernelOn(beamdyn.PredictiveRP, dev)
	case "reference":
		// Host reference solver: sim.Algo stays nil.
	default:
		log.Printf("unknown kernel %q", *kernel)
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("beamdyn simulation: N=%d grid=%dx%d kappa=%d tol=%g kernel=%s\n",
		sim.Cfg.Beam.NumParticles, sim.Cfg.NX, sim.Cfg.NY, sim.Cfg.Kappa, sim.Cfg.Tol, *kernel)
	t0 := time.Now()
	sim.Warmup()
	fmt.Printf("warm-up (history filled through step %d): %.2fs\n",
		sim.Step, time.Since(t0).Seconds())

	for i := 0; i < *steps; i++ {
		t0 = time.Now()
		step := sim.Advance()
		wall := time.Since(t0).Seconds()
		st := sim.Ensemble.Stats()
		if sim.Last != nil {
			m := sim.Last.Metrics
			fmt.Printf("step %3d: gpu=%.4gs gflops=%.0f wee=%.1f%% gle=%.1f%% l1=%.1f%% fallback=%d host=%.3fs wall=%.2fs sigma=(%.3g, %.3g)\n",
				step, m.Time, m.Gflops(),
				100*m.WarpExecutionEfficiency(), 100*m.GlobalLoadEfficiency(),
				100*m.L1HitRate(), sim.Last.FallbackEntries,
				sim.Last.Host.Overhead(), wall, st.SigmaX, st.SigmaY)
		} else {
			fmt.Printf("step %3d: host reference, wall=%.2fs sigma=(%.3g, %.3g)\n",
				step, wall, st.SigmaX, st.SigmaY)
		}
		if *diag && sim.Ensemble.Len() > 0 {
			sum := diagnostics.Analyze(sim.Ensemble)
			fmt.Printf("          %s\n", sum)
			yprof := diagnostics.Project(sim.Ensemble, diagnostics.AxisY,
				sum.MeanY-5*sum.SigmaY, sum.MeanY+5*sum.SigmaY, 48)
			fmt.Printf("          |%s|\n", yprof.Sparkline())
		}
		if observer != nil && *obsInterval > 0 && (i+1)%*obsInterval == 0 {
			if s, ok := observer.Pred.Last(); ok {
				fmt.Printf("          obs: kernel=%s trained=%t fallback-rate=%.4f err(mean/p90/max)=%.3g/%.3g/%.3g train=%.3gs\n",
					s.Kernel, s.Trained, s.FallbackRate, s.ErrMean, s.ErrP90, s.ErrMax, s.TrainSec)
			}
			observer.Event("obs/interval", step, obs.I("interval", *obsInterval))
		}
	}
	if dropped := sim.Dropped(); dropped > 0 {
		fmt.Printf("warning: %d particle depositions fell outside the grid\n", dropped)
	}
	if *profile {
		fmt.Println("\nsimulated-GPU kernel summary:")
		fmt.Print(prof)
	}
	if observer != nil {
		fmt.Println("\ntelemetry snapshot:")
		fmt.Print(observer.Reg.Snapshot().Table())
		if s, ok := observer.Pred.Last(); ok {
			fmt.Printf("predictor (last step %d): fallback-rate=%.4f err-mean=%.3g err-max=%.3g samples=%d\n",
				s.Step, s.FallbackRate, s.ErrMean, s.ErrMax, len(observer.Pred.Samples()))
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := observer.WriteSnapshot(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := observer.Trace.Err(); err != nil {
			log.Fatalf("trace sink: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Save(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("checkpoint written to %s (step %d)\n", *save, sim.Step)
	}
}
