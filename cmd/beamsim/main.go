// Command beamsim runs a full beam-dynamics simulation (the four-step loop
// of the paper's Figure 1) with a selectable compute-potentials kernel and
// prints per-step simulated-GPU profiler metrics.
//
// Usage:
//
//	beamsim -n 100000 -grid 64 -steps 12 -kernel predictive \
//	        -trace run.jsonl -metrics run.json -obs-interval 2
//
// The -trace/-metrics/-obs-interval flags enable the telemetry layer (see
// the Observability section of README.md): a JSONL span trace of every
// loop stage and kernel sub-phase, an end-of-run metrics snapshot with the
// per-step predictor-quality series ("-metrics -" prints it to stdout),
// and a periodic one-line summary. Adding "-http :8080" serves the live
// telemetry over HTTP while the run advances: /metrics (Prometheus text
// exposition), /snapshot.json, /healthz (step liveness + fleet device
// states) and /debug/pprof. Traces feed the offline obstool analyzer
// (summary, timeline, fleet, predictor, diff, gate).
//
// Multi-device runs: -devices N splits the grid statically (one band per
// device); adding -fleet schedules bands dynamically through the fleet
// manager (over-decomposition, cost-predicted placement, work stealing,
// failure retry), and -inject scripts health events against it:
//
//	beamsim -devices 4 -fleet -inject "fail:dev=1,step=9,after=2" -steps 6
//
// The incident layer (see the Incidents & alerts section of README.md)
// rides on the same observer: -alerts evaluates a per-step rule script
// ("default" for the built-in set) over step time, predictor quality,
// fleet health and the beam's physics invariants; -flight-depth sizes the
// always-on flight recorder that retains the last N trace events even
// when -trace is off; and -postmortem-dir makes critical alerts, stalls,
// unrecovered device failures and run errors dump a self-contained
// post-mortem bundle there (flight trace, metrics snapshot, alert log,
// checkpoint, profiles) for offline triage with "obstool postmortem".
//
// "beamsim serve" switches from one-shot runs to the job control plane
// (see the Serving section of README.md): simulations are submitted as
// JobSpec documents over HTTP (POST /jobs), queued per tenant and
// priority, dispatched onto a worker pool, checkpointed every step and
// resumed after device failures. cmd/beamctl is the matching client.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"beamdyn"
	"beamdyn/internal/diagnostics"
	"beamdyn/internal/fleet"
	"beamdyn/internal/gpusim"
	"beamdyn/internal/obs"
	"beamdyn/internal/obs/alert"
	"beamdyn/internal/obs/bundle"
	"beamdyn/internal/obs/export"
	"beamdyn/internal/obs/flight"
	"beamdyn/internal/obs/runtimecol"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("beamsim: ")
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	var (
		n       = flag.Int("n", 100000, "number of macro-particles")
		nx      = flag.Int("grid", 64, "grid resolution (NxN)")
		steps   = flag.Int("steps", 6, "time steps to run after warm-up")
		kernel  = flag.String("kernel", "predictive", "kernel: twophase | heuristic | predictive | reference")
		kappa   = flag.Int("kappa", 6, "retardation depth in subregions")
		tol     = flag.Float64("tol", 1e-8, "rp-integral error tolerance")
		seed    = flag.Uint64("seed", 1, "Monte-Carlo seed")
		dynamic = flag.Bool("dynamic", false, "let the bunch respond to its self-forces (default: rigid)")
		profile = flag.Bool("profile", false, "print an nvprof-style per-kernel summary at the end")
		diag    = flag.Bool("diag", false, "print beam diagnostics (emittance, Twiss, profile sparkline) each step")
		load    = flag.String("load", "", "resume from a checkpoint file")
		save    = flag.String("save", "", "write a checkpoint file at the end")

		hostWorkers = flag.Int("host-workers", 0, "host-side worker count for the kernels' predict/cluster/train phases (0 = GOMAXPROCS; results are identical for any value)")

		devices   = flag.Int("devices", 1, "number of simulated devices")
		fleetMode = flag.Bool("fleet", false, "schedule row-bands dynamically across the devices via the fleet manager")
		inject    = flag.String("inject", "", "scripted fleet health events, e.g. \"fail:dev=1,step=9,after=2;slow:dev=2,step=8,factor=3,until=12\" (implies -fleet)")

		traceOut    = flag.String("trace", "", "write a JSONL span/event trace to this file")
		node        = flag.String("node", "", "node label stamped as baggage on every traced span/event")
		runtimeInt  = flag.Duration("runtime-interval", time.Second, "sample Go runtime telemetry (go_* gauges: heap, goroutines, GC pauses) at this period when telemetry is on (0 disables)")
		metricsOut  = flag.String("metrics", "", "write an end-of-run metrics snapshot (JSON) to this file (\"-\" for stdout)")
		obsInterval = flag.Int("obs-interval", 0, "print a predictor-quality summary every N steps (0 disables)")
		httpAddr    = flag.String("http", "", "serve live telemetry on this address (e.g. :8080): /metrics, /snapshot.json, /healthz, /alerts, /debug/pprof")
		staleAfter  = flag.Duration("stale-after", 30*time.Second, "with -http, /healthz reports stalled (503) when no step completes within this window; with -postmortem-dir, the stall watchdog dumps a bundle after it (0 disables both)")

		alerts        = flag.String("alerts", "", "per-step alert rules, e.g. \"fallback_rate>0.2:for=5;steptime:mad=6;device_failed\" (\"default\" for the built-in set; empty disables alerting)")
		flightDepth   = flag.Int("flight-depth", flight.DefaultDepth, "flight recorder depth: retain the last N trace events in memory even when -trace is off (0 disables)")
		postmortemDir = flag.String("postmortem-dir", "", "dump post-mortem bundles under this directory on critical alerts, stalls, unrecovered device failures and run errors")
	)
	flag.Parse()

	var sim *beamdyn.Simulation
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		sim, err = beamdyn.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at step %d\n", *load, sim.Step)
	} else {
		cfg := beamdyn.DefaultConfig()
		cfg.Beam.NumParticles = *n
		cfg.NX, cfg.NY = *nx, *nx
		cfg.Kappa = *kappa
		cfg.Tol = *tol
		cfg.Seed = *seed
		cfg.Rigid = !*dynamic
		sim = beamdyn.New(cfg)
	}
	sim.Cfg.HostWorkers = *hostWorkers
	if *inject != "" {
		*fleetMode = true
	}
	if *devices < 1 {
		log.Fatalf("-devices %d: need at least one device", *devices)
	}
	prof := gpusim.NewProfiler()

	// Telemetry: one observer feeds the trace sink, the metrics registry
	// (including the simulated-GPU counters via the device recorder) and
	// the predictor-quality series. Fleet runs always get an observer so
	// the end-of-run snapshot table carries the fleet counters (bands
	// dispatched/stolen/retried, device state transitions).
	var (
		observer  *obs.Observer
		traceSink *obs.JSONLSink
		flightRec *flight.Recorder
	)
	if *traceOut != "" || *metricsOut != "" || *obsInterval > 0 || *fleetMode ||
		*httpAddr != "" || *alerts != "" || *postmortemDir != "" {
		observer = beamdyn.NewObserver()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			// The sink owns the file: its Close flushes and closes it.
			traceSink = obs.NewJSONLSink(f)
		}
		// The flight recorder sits in front of the (optional) trace file:
		// it retains the last -flight-depth events in memory so an incident
		// bundle has a trace even when -trace was never given.
		var fwd obs.Sink
		if traceSink != nil {
			fwd = traceSink
		}
		if *flightDepth > 0 {
			flightRec = flight.New(*flightDepth, fwd)
			observer.Trace = obs.NewTracer(flightRec)
		} else if fwd != nil {
			observer.Trace = obs.NewTracer(fwd)
		}
		sim.Obs = observer
	}

	// Run-level trace scope: the whole run shares one trace ID, and -node
	// (when given) rides as baggage on every span. A no-op (the same
	// observer back) when tracing is off, so untraced runs are untouched.
	runObs := observer
	if observer != nil {
		var baggage []obs.Attr
		if *node != "" {
			baggage = append(baggage, obs.S("node", *node))
		}
		runObs = observer.StartTrace(baggage...)
		sim.Obs = runObs
	}

	// Runtime telemetry collector: go_* gauges and the GC-pause histogram,
	// sampled on its own goroutine for the run's duration.
	var rtc *runtimecol.Collector
	if observer != nil && *runtimeInt > 0 {
		rtc = runtimecol.Start(observer.Reg, *runtimeInt)
	}

	// The bundle writer is assigned after the alert engine below; the
	// OnAlert callback closes over the variable and only runs once stepping
	// starts, so the late assignment is safe.
	var bundleW *bundle.Writer

	var engine *alert.Engine
	if *alerts != "" {
		spec := *alerts
		if spec == "default" {
			spec = alert.DefaultRules
		}
		rules, err := alert.ParseRules(spec)
		if err != nil {
			log.Fatal(err)
		}
		engine = alert.NewEngine(alert.Config{
			Rules: rules,
			Obs:   observer,
			OnAlert: func(a alert.Alert) {
				log.Printf("ALERT %s", a.Message)
				if bundleW != nil && a.Severity == alert.Critical.String() {
					trigger := a
					if dir, err := bundleW.Dump("alert", a.Step, &trigger); err != nil {
						log.Printf("post-mortem: %v", err)
					} else {
						log.Printf("post-mortem bundle at %s", dir)
					}
				}
			},
		})
		sim.Alerts = engine
	}

	var ksel beamdyn.Kernel
	switch *kernel {
	case "twophase":
		ksel = beamdyn.TwoPhaseRP
	case "heuristic":
		ksel = beamdyn.HeuristicRP
	case "predictive":
		ksel = beamdyn.PredictiveRP
	case "reference":
		if *fleetMode || *devices > 1 {
			log.Fatal("-kernel reference runs on the host; it cannot drive -devices or -fleet")
		}
	default:
		log.Printf("unknown kernel %q", *kernel)
		flag.Usage()
		os.Exit(2)
	}

	newDevice := func(d int) *gpusim.Device {
		dev := beamdyn.NewDevice(beamdyn.KeplerK40())
		dev.SetLabel(fmt.Sprintf("dev%d", d))
		if *profile {
			dev.AttachProfiler(prof)
		}
		if observer != nil {
			dev.AttachRecorder(runObs.GPURecorder())
		}
		return dev
	}

	var fl *fleet.Fleet
	var mgr fleet.Manager
	switch {
	case *kernel == "reference":
		// Host reference solver: sim.Algo stays nil.
	case *fleetMode:
		devs := make([]*gpusim.Device, *devices)
		for d := range devs {
			devs[d] = newDevice(d)
		}
		if *inject != "" {
			events, err := fleet.ParseEvents(*inject)
			if err != nil {
				log.Fatal(err)
			}
			mgr = fleet.NewInjectable(devs, events)
		} else {
			mgr = fleet.NewFixed(devs)
		}
		fl = fleet.New(fleet.Config{
			Manager: mgr,
			MakeKernel: func(id int, dev *gpusim.Device) beamdyn.Algorithm {
				return beamdyn.NewKernelOn(ksel, dev)
			},
			Seed: *seed,
		})
		sim.Algo = fl
		sim.DeviceCounts = fl.Counts
	case *devices > 1:
		sim.Algo = beamdyn.NewMultiGPUOn(ksel, *devices, newDevice)
	default:
		sim.Algo = beamdyn.NewKernelOn(ksel, newDevice(0))
	}

	if *postmortemDir != "" {
		bundleW = bundle.NewWriter(bundle.Config{
			Dir:        *postmortemDir,
			Obs:        observer,
			Flight:     flightRec,
			Alerts:     engine,
			Checkpoint: sim.Save,
		})
	}

	if *httpAddr != "" {
		srv := &export.Server{Obs: observer, Alerts: engine, StaleAfter: *staleAfter}
		if fl != nil {
			srv.Devices = func() []export.DeviceHealth {
				hs := fl.Health()
				out := make([]export.DeviceHealth, len(hs))
				for i, h := range hs {
					out[i] = export.DeviceHealth{
						Device:      h.Label,
						State:       h.State,
						Slowdown:    h.Slowdown,
						BusySec:     h.BusySec,
						Utilization: h.Utilization,
					}
				}
				return out
			}
		}
		_, addr, err := srv.Start(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry: http://%s (/metrics /snapshot.json /healthz /alerts /debug/pprof/)\n", addr)
	}

	// Stall watchdog: when a bundle directory is wired, a stuck step dumps
	// a live bundle (no checkpoint — the stuck step owns the simulation
	// state) so the incident is preserved even if the process then hangs
	// forever or is killed.
	var watchStop chan struct{}
	if bundleW != nil && observer != nil && *staleAfter > 0 {
		watchStop = make(chan struct{})
		go watchStall(observer, bundleW, *staleAfter, watchStop)
	}

	mode := ""
	if *fleetMode {
		mode = fmt.Sprintf(" devices=%d (fleet)", *devices)
	} else if *devices > 1 {
		mode = fmt.Sprintf(" devices=%d (static bands)", *devices)
	}
	fmt.Printf("beamdyn simulation: N=%d grid=%dx%d kappa=%d tol=%g kernel=%s%s\n",
		sim.Cfg.Beam.NumParticles, sim.Cfg.NX, sim.Cfg.NY, sim.Cfg.Kappa, sim.Cfg.Tol, *kernel, mode)
	// The warm-up and step loop run under the run-error guard: a panic
	// anywhere inside dumps a post-mortem bundle and flushes the trace file
	// before propagating, so a crashed run still leaves its evidence.
	runGuarded(bundleW, sim, traceSink, func() {
		t0 := time.Now()
		sim.Warmup()
		fmt.Printf("warm-up (history filled through step %d): %.2fs\n",
			sim.Step, time.Since(t0).Seconds())

		for i := 0; i < *steps; i++ {
			t0 = time.Now()
			step := sim.Advance()
			wall := time.Since(t0).Seconds()
			st := sim.Ensemble.Stats()
			if sim.Last != nil {
				m := sim.Last.Metrics
				fmt.Printf("step %3d: gpu=%.4gs gflops=%.0f wee=%.1f%% gle=%.1f%% l1=%.1f%% fallback=%d host=%.3fs wall=%.2fs sigma=(%.3g, %.3g)\n",
					step, m.Time, m.Gflops(),
					100*m.WarpExecutionEfficiency(), 100*m.GlobalLoadEfficiency(),
					100*m.L1HitRate(), sim.Last.FallbackEntries,
					sim.Last.Host.Overhead(), wall, st.SigmaX, st.SigmaY)
			} else {
				fmt.Printf("step %3d: host reference, wall=%.2fs sigma=(%.3g, %.3g)\n",
					step, wall, st.SigmaX, st.SigmaY)
			}
			if *diag && sim.Ensemble.Len() > 0 {
				sum := diagnostics.Analyze(sim.Ensemble)
				fmt.Printf("          %s\n", sum)
				yprof := diagnostics.Project(sim.Ensemble, diagnostics.AxisY,
					sum.MeanY-5*sum.SigmaY, sum.MeanY+5*sum.SigmaY, 48)
				fmt.Printf("          |%s|\n", yprof.Sparkline())
			}
			if observer != nil && *obsInterval > 0 && (i+1)%*obsInterval == 0 {
				if s, ok := observer.Pred.Last(); ok {
					fmt.Printf("          obs: kernel=%s trained=%t fallback-rate=%.4f err(mean/p90/max)=%.3g/%.3g/%.3g train=%.3gs\n",
						s.Kernel, s.Trained, s.FallbackRate, s.ErrMean, s.ErrP90, s.ErrMax, s.TrainSec)
				}
				observer.Event("obs/interval", step, obs.I("interval", *obsInterval))
			}
		}
	})
	if watchStop != nil {
		close(watchStop)
	}
	// Final runtime sample, then stop the collector before the snapshot is
	// rendered so the go_* gauges reflect end-of-run state.
	rtc.Stop()
	// An unrecovered device failure is an incident even when no alert rule
	// watched for it: if the run ends with failed devices and nothing else
	// dumped a bundle, dump one now.
	if bundleW != nil && fl != nil {
		if failed, _ := fl.Counts(); failed > 0 && bundleW.Written() == 0 {
			if dir, err := bundleW.Dump("device-failure", sim.Step, nil); err != nil {
				log.Printf("post-mortem: %v", err)
			} else {
				fmt.Printf("post-mortem bundle (unrecovered device failure) at %s\n", dir)
			}
		}
	}
	if dropped := sim.Dropped(); dropped > 0 {
		fmt.Printf("warning: %d particle depositions fell outside the grid\n", dropped)
	}
	if *profile {
		fmt.Println("\nsimulated-GPU kernel summary:")
		fmt.Print(prof)
	}
	if fl != nil {
		st := fl.LastStats()
		fmt.Printf("\nfleet summary (last step): bands=%d stolen=%d retried=%d\n",
			st.Bands, st.Stolen, st.Retried)
		for d := 0; d < mgr.NumDevices(); d++ {
			fmt.Printf("  %-6s state=%-8s slowdown=%.3g busy=%.4gs util=%.0f%%\n",
				mgr.Device(d).Label(), mgr.State(d), mgr.Slowdown(d),
				st.Busy[d], 100*st.Utilization(d))
		}
		if trans := mgr.Transitions(); len(trans) > 0 {
			fmt.Println("  state transitions:")
			for _, tr := range trans {
				fmt.Printf("    step %3d: dev%d %s -> %s (%s)\n",
					tr.Step, tr.Device, tr.From, tr.To, tr.Reason)
			}
		}
	}
	if observer != nil {
		fmt.Println("\ntelemetry snapshot:")
		fmt.Print(observer.Reg.Snapshot().Table())
		if s, ok := observer.Pred.Last(); ok {
			fmt.Printf("predictor (last step %d): fallback-rate=%.4f err-mean=%.3g err-max=%.3g samples=%d\n",
				s.Step, s.FallbackRate, s.ErrMean, s.ErrMax, len(observer.Pred.Samples()))
		}
	}
	if *metricsOut == "-" {
		if err := observer.WriteSnapshot(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := observer.WriteSnapshot(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if traceSink != nil {
		// Close flushes the buffer, closes the file and surfaces the first
		// error hit anywhere along the run.
		if err := traceSink.Close(); err != nil {
			log.Fatalf("trace sink: %v", err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Save(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("checkpoint written to %s (step %d)\n", *save, sim.Step)
	}
}

// runGuarded runs body and, on panic, dumps a "run-error" bundle and
// flushes the trace sink before re-panicking. DumpLive (no checkpoint)
// because the simulation state mid-panic is not trustworthy.
func runGuarded(w *bundle.Writer, sim *beamdyn.Simulation, trace *obs.JSONLSink, body func()) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if w != nil {
			if dir, err := w.DumpLive("run-error", sim.Step, nil); err != nil {
				log.Printf("post-mortem: %v", err)
			} else {
				log.Printf("run error: post-mortem bundle at %s", dir)
			}
		}
		if trace != nil {
			trace.Close()
		}
		panic(r)
	}()
	body()
}

// watchStall polls the sim_step gauge (atomic, so safe to read while the
// step executes) and dumps one live post-mortem bundle if the counter
// stops moving for longer than the stall window, then exits. The main
// loop closes stop on a normal finish.
func watchStall(o *obs.Observer, w *bundle.Writer, after time.Duration, stop chan struct{}) {
	period := after / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	last := o.Reg.Gauge("sim_step").Value()
	moved := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			cur := o.Reg.Gauge("sim_step").Value()
			if cur != last {
				last, moved = cur, time.Now()
				continue
			}
			if time.Since(moved) > after {
				if dir, err := w.DumpLive("stall", int(cur), nil); err != nil {
					log.Printf("post-mortem: %v", err)
				} else {
					log.Printf("stall: no step progress for %s; post-mortem bundle at %s", after, dir)
				}
				return
			}
		}
	}
}
