GO ?= go

.PHONY: ci vet build test race bench-obs

# The full local CI gate: what a PR must pass.
ci: vet build race bench-obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry-overhead check: the disabled path must stay within 5% of the
# uninstrumented kernel step (compare the two Benchmark lines by hand, or
# with benchstat when available).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchtime 5x ./internal/kernels
