GO ?= go
GOFMT ?= gofmt

.PHONY: ci fmt vet build test race test-fleet-race bench-obs

# The full local CI gate: what a PR must pass.
ci: fmt vet build race test-fleet-race bench-obs

# Formatting gate: fail (and list the offenders) if any file needs gofmt.
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection paths are concurrency-heavy: race-check the fleet
# package and run a short scripted-failure chaos pass on every PR.
test-fleet-race:
	$(GO) test -race -count=1 ./internal/fleet/...
	$(GO) run ./cmd/beamsim -n 5000 -grid 32 -steps 2 -kernel twophase \
		-devices 4 -inject "fail:dev=1,step=10,after=1"

# Telemetry-overhead check: the disabled path must stay within 5% of the
# uninstrumented kernel step (compare the two Benchmark lines by hand, or
# with benchstat when available).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchtime 5x ./internal/kernels
