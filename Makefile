GO ?= go
GOFMT ?= gofmt

.PHONY: ci fmt vet build test race test-fleet-race test-alert-race test-jobs-race test-trace-race test-rp-race test-gpu-race bench-obs bench-host bench-json bench-json-ci bench-rp bench-rp-scaling bench-rp-json bench-gpu bench-gpu-json obs-gate

# The full local CI gate: what a PR must pass.
ci: fmt vet build race test-fleet-race test-alert-race test-jobs-race test-trace-race test-rp-race test-gpu-race bench-obs bench-host bench-json-ci bench-rp bench-rp-scaling bench-gpu obs-gate

# Formatting gate: fail (and list the offenders) if any file needs gofmt.
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection paths are concurrency-heavy: race-check the fleet
# package and run a short scripted-failure chaos pass on every PR.
test-fleet-race:
	$(GO) test -race -count=1 ./internal/fleet/...
	$(GO) run ./cmd/beamsim -n 5000 -grid 32 -steps 2 -kernel twophase \
		-devices 4 -inject "fail:dev=1,step=10,after=1"

# Incident-layer race gate: the alert engine, flight recorder, bundle
# writer and export server are all crossed by concurrent goroutines
# (watchdogs, scrapers, the step loop), so race-check them directly, then
# run a scripted-chaos pass with alerting and post-mortem dumping enabled
# and triage the resulting bundle with obstool — the full incident chain,
# end to end, on every PR.
test-alert-race:
	$(GO) test -race -count=1 ./internal/obs/...
	rm -rf /tmp/beamdyn_pm
	$(GO) run ./cmd/beamsim -n 5000 -grid 32 -steps 4 -kernel twophase \
		-devices 2 -inject "fail:dev=1,step=9" \
		-alerts "device_failed:for=1;steptime:mad=8" \
		-flight-depth 1024 -postmortem-dir /tmp/beamdyn_pm
	$(GO) run ./cmd/obstool postmortem /tmp/beamdyn_pm/postmortem-00-*

# Control-plane gate: race-check the jobs package (queue hammering, the
# checkpoint/resume chaos test, SSE streaming), then run the scenario
# catalog through a real oneshot server with tracing on and hold the
# queue-wait p95 to the committed BENCH_jobs.json budget.
test-jobs-race:
	$(GO) test -race -count=1 ./internal/jobs/...
	$(GO) run ./cmd/beamsim serve -http "" -oneshot \
		-trace /tmp/jobs_gate_trace.jsonl \
		-submit examples/scenarios/smooth-gaussian.json,examples/scenarios/halo-dominated.json,examples/scenarios/bunch-compression.json
	$(GO) run ./cmd/obstool gate BENCH_jobs.json /tmp/jobs_gate_trace.jsonl

# Distributed-tracing gate: race-check the span-context paths (concurrent
# scoped tracers hammering one tracer's ID counters and sink), then run a
# two-job oneshot serve with tracing on under the race detector and
# reconstruct each job's causal tree with obstool — the context-propagation
# chain (submit -> queue-wait -> run -> step -> kernels/fleet) end to end.
test-trace-race:
	$(GO) test -race -count=1 -run 'Trace|Scope|Span|Tree|Exemplar' \
		./internal/obs/... ./internal/jobs/...
	$(GO) run -race ./cmd/beamsim serve -http "" -oneshot \
		-node ci -trace /tmp/trace_gate.jsonl \
		-submit examples/scenarios/smooth-gaussian.json,examples/scenarios/halo-dominated.json
	$(GO) run ./cmd/obstool tree /tmp/trace_gate.jsonl

# Telemetry-overhead check: the disabled path must stay within 5% of the
# uninstrumented kernel step, and the full incident layer (flight recorder
# + default alert rules + invariant gauges) within 5% of the bare
# simulation step (compare the Benchmark lines by hand, or with benchstat
# when available).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchtime 5x ./internal/kernels
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchtime 5x ./internal/core

# Host-phase microbenchmark: predict/cluster/train ns per step and
# allocations per step, per worker count (see internal/hostpar).
bench-host:
	$(GO) test -run '^$$' -bench 'BenchmarkPredictiveHostPhases' -benchtime 3x \
		-benchmem ./internal/kernels

# Refresh the committed BENCH_host.json at the canonical 128x128 size.
bench-json:
	$(GO) run ./cmd/benchhost -grid 128 -steps 3 -warmup 2 -workers 1,2,4 \
		-out BENCH_host.json

# CI variant: exercise the same measurement path on a small grid with a
# throwaway output file, so ci cannot clobber the committed numbers.
bench-json-ci:
	$(GO) run ./cmd/benchhost -grid 32 -steps 2 -warmup 1 -workers 1,2 \
		-out /tmp/BENCH_host_ci.json

# Streaming replay engine race gate: the device fans SMs out as
# goroutines with per-SM scratch, and the engine A/B matrices in gpusim,
# kernels and fleet drive both engines across every interleaving-sensitive
# path (resident windows, work stealing, multi-GPU fan-out).
test-gpu-race:
	$(GO) test -race -count=1 ./internal/gpusim/...
	$(GO) test -race -count=1 -run 'Engine' ./internal/kernels/... ./internal/fleet/...

# GPU replay-engine gate for CI: re-measure streaming vs oracle on a
# small grid with a throwaway output file and enforce the speedup floor +
# the zero-allocation contract. The fresh re-measurement uses a
# noise-tolerant floor of 1.3 (a small grid on a shared machine swings
# the ratio well below the committed 128x128 number); the committed
# >= 2x floor is enforced deterministically by obs-gate's BENCH_gpu.json
# self-checks.
bench-gpu:
	$(GO) run ./cmd/benchgpu -grid 48 -reps 3 -check \
		-min-speedup 1.3 -out /tmp/bench_gpu_ci.json

# Refresh the committed BENCH_gpu.json at the canonical 128x128 size.
bench-gpu-json:
	$(GO) run ./cmd/benchgpu -grid 128 -reps 7 -check -out BENCH_gpu.json

# Tiled-dispatch race gate: the cache-blocked GridSolver fans tiles out
# across the hostpar pool with per-worker evaluators and shared target
# writes, so race-check the whole retard package (the A/B and determinism
# tests drive the tiled path at several worker counts) on every PR.
test-rp-race:
	$(GO) test -race -count=1 ./internal/retard/...

# rp-integral core gate for CI: measure the evaluator against the
# seed-equivalent closure baseline on a small grid with a throwaway
# output file and enforce the speedup floor + zero-allocation contract.
# The fresh re-measurement uses a noise-tolerant floor of 5 (a small grid
# on a shared machine jitters ~10% around the committed 6.3x, and a gate
# that flakes gets deleted); the committed 128x128 floor of >= 6x is
# enforced deterministically by obs-gate's BENCH_rp.json self-checks.
bench-rp:
	$(GO) run ./cmd/benchrp -grid 48 -reps 8 -workers 1 -check \
		-min-speedup 5 -min-scaling 0 -out /tmp/bench_rp_ci.json

# Worker-sweep scaling gate: run the full-grid solve at 1/2/4 workers
# (un-pinned GOMAXPROCS, per-row gomaxprocs/num_cpu recorded) and enforce
# the >= 1.6x efficiency floor at 4 workers. On machines with fewer cores
# than workers the scaling check reports SKIPPED rather than gating on
# timeshared noise — the committed BENCH_rp.json still carries the floor.
bench-rp-scaling:
	$(GO) run ./cmd/benchrp -grid 48 -reps 8 -workers 1,2,4 -check \
		-min-speedup 5 -min-scaling 1.6 -scaling-workers 4 \
		-out /tmp/bench_rp_scaling_ci.json

# Refresh the committed BENCH_rp.json at the canonical 128x128 size.
bench-rp-json:
	$(GO) run ./cmd/benchrp -grid 128 -reps 10 -workers 1,2,4 \
		-out BENCH_rp.json

# Perf regression gate: trace short deterministic predictive and host
# reference runs, then check them against the committed budgets —
# BENCH_host.json (per-phase host costs) and BENCH_rp.json (reference
# solver per-step cost) — via obstool (exit 1 on regression). The runs
# use 32x32 grids against the baselines' 128x128 budgets, so the gate
# only trips on order-of-magnitude hot-path regressions, never on
# machine noise.
obs-gate:
	$(GO) run ./cmd/beamsim -n 5000 -grid 32 -steps 3 -kernel predictive \
		-seed 7 -trace /tmp/obs_gate_trace.jsonl > /dev/null
	$(GO) run ./cmd/beamsim -n 5000 -grid 32 -steps 3 -kernel reference \
		-seed 7 -trace /tmp/obs_gate_ref_trace.jsonl > /dev/null
	cat /tmp/obs_gate_trace.jsonl /tmp/obs_gate_ref_trace.jsonl \
		> /tmp/obs_gate_all.jsonl
	$(GO) run ./cmd/obstool gate BENCH_host.json BENCH_rp.json BENCH_gpu.json \
		/tmp/obs_gate_all.jsonl -max-regress 10%
