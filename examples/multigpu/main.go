// Multi-GPU strong scaling: run the Predictive-RP kernel data-parallel
// across 1, 2 and 4 simulated K40s on a fixed problem. The rp-integral is
// embarrassingly parallel over grid points, so the speedup tracks the
// device count until per-device occupancy runs out.
package main

import (
	"fmt"

	"beamdyn"
)

func main() {
	cfg := beamdyn.DefaultConfig()
	cfg.Beam.NumParticles = 50000
	cfg.NX, cfg.NY = 64, 64

	fmt.Printf("%8s %14s %8s\n", "devices", "gpu time (s)", "speedup")
	var base float64
	for _, devices := range []int{1, 2, 4} {
		sim := beamdyn.New(cfg)
		sim.Algo = beamdyn.NewMultiGPU(beamdyn.PredictiveRP, devices)
		sim.Warmup()
		sim.Advance() // warm cross-step state
		sim.Advance()
		t := sim.Last.Metrics.Time
		if base == 0 {
			base = t
		}
		fmt.Printf("%8d %14.4g %8.2f\n", devices, t, base/t)
	}
}
