// Convergence study (the paper's Figure 3): the mean-square error of the
// computed collective force against the continuum reference scales as 1/N
// with the number of macro-particles, as expected for Monte-Carlo
// sampling.
package main

import (
	"fmt"
	"math"

	"beamdyn"
)

func main() {
	const nx = 48
	base := beamdyn.DefaultConfig()
	base.NX, base.NY = nx, nx

	// Continuum reference, computed once.
	ccfg := base
	ccfg.Continuum = true
	reference := beamdyn.New(ccfg)
	reference.Warmup()
	reference.Advance()
	rcx, rcy := reference.Center()

	fmt.Printf("%10s %12s %14s\n", "N", "N_ppc", "MSE")
	var prevMSE, prevN float64
	for _, n := range []int{5000, 10000, 20000, 40000, 80000} {
		cfg := base
		cfg.Beam.NumParticles = n
		sim := beamdyn.New(cfg)
		sim.Warmup()
		sim.Advance()
		scx, scy := sim.Center()

		var sum float64
		var count int
		for iy := -20; iy <= 20; iy += 2 {
			for ix := -10; ix <= 10; ix += 2 {
				dx := float64(ix) / 5 * cfg.Beam.SigmaX
				dy := float64(iy) / 10 * cfg.Beam.SigmaY
				d := sim.ForceAt(scx+dx, scy+dy).AY - reference.ForceAt(rcx+dx, rcy+dy).AY
				sum += d * d
				count++
			}
		}
		mse := sum / float64(count)
		nppc := float64(n) / float64(nx*nx)
		fmt.Printf("%10d %12.2f %14.5g", n, nppc, mse)
		if prevMSE > 0 {
			// Local log-log slope between consecutive N values.
			slope := math.Log(mse/prevMSE) / math.Log(float64(n)/prevN)
			fmt.Printf("   (local slope %.2f)", slope)
		}
		fmt.Println()
		prevMSE, prevN = mse, float64(n)
	}
	fmt.Println("\nMonte-Carlo 1/N scaling predicts slope -1.")
}
