// Kernel comparison: run the same simulation with the paper's three
// compute-potentials kernels — Two-Phase-RP [9], Heuristic-RP [10] and the
// machine-learning Predictive-RP (Algorithm 1) — and print the profiler
// comparison (the shape of the paper's Table I).
package main

import (
	"fmt"

	"beamdyn"
)

func main() {
	fmt.Printf("%-14s %12s %10s %8s %8s %8s %8s %10s\n",
		"kernel", "gpu time(s)", "Gflop/s", "AI", "WEE%", "GLE%", "L1%", "fallback")
	var heuristicTime, predictiveTime float64
	for _, k := range []beamdyn.Kernel{beamdyn.TwoPhaseRP, beamdyn.HeuristicRP, beamdyn.PredictiveRP} {
		cfg := beamdyn.DefaultConfig()
		cfg.NX, cfg.NY = 96, 96

		sim := beamdyn.New(cfg)
		sim.Algo = beamdyn.NewKernel(k)
		sim.Warmup()
		// Measure a steady-state step (cross-step state warm: previous
		// partitions remembered, prediction model trained).
		sim.Advance()
		sim.Advance()

		m := sim.Last.Metrics
		fmt.Printf("%-14s %12.4g %10.1f %8.2f %8.1f %8.1f %8.1f %10d\n",
			k, m.Time, m.Gflops(), m.ArithmeticIntensity(),
			100*m.WarpExecutionEfficiency(), 100*m.GlobalLoadEfficiency(),
			100*m.L1HitRate(), sim.Last.FallbackEntries)
		switch k {
		case beamdyn.HeuristicRP:
			heuristicTime = m.Time
		case beamdyn.PredictiveRP:
			predictiveTime = m.Time
		}
	}
	if predictiveTime > 0 {
		fmt.Printf("\nPredictive-RP speedup over Heuristic-RP: %.2fx\n", heuristicTime/predictiveTime)
	}
}
