// Prediction-model comparison (the paper's Section III.B.1 study, plus
// its future-work models): run the Predictive-RP kernel with kNN, linear
// regression, a regression tree, and the online model selector, and
// compare forecast quality through the safety-net fallback volume.
package main

import (
	"fmt"

	"beamdyn"
	"beamdyn/internal/kernels"
)

func main() {
	models := []struct {
		name string
		pred kernels.Predictor
	}{
		{"kNN k=4 (paper)", kernels.NewKNNPredictor(4)},
		{"linear regression", kernels.NewLinregPredictor()},
		{"regression tree", kernels.NewTreePredictor()},
		{"online selector", kernels.DefaultSelector()},
	}

	fmt.Printf("%-22s %12s %10s %10s\n", "model", "gpu time(s)", "fallback", "WEE%")
	for _, m := range models {
		cfg := beamdyn.DefaultConfig()
		cfg.Beam.NumParticles = 50000
		cfg.NX, cfg.NY = 64, 64

		sim := beamdyn.New(cfg)
		pr := beamdyn.NewPredictive(beamdyn.NewDevice(beamdyn.KeplerK40()))
		pr.Pred = m.pred
		sim.Algo = pr
		sim.Warmup()
		sim.Advance() // bootstrap + train
		sim.Advance() // measured step
		fmt.Printf("%-22s %12.4g %10d %10.1f\n",
			m.name, sim.Last.Metrics.Time, sim.Last.FallbackEntries,
			100*sim.Last.Metrics.WarpExecutionEfficiency())
		if sel, ok := m.pred.(*kernels.SelectorPredictor); ok {
			fmt.Println("  selector held-out scores:")
			for _, line := range splitLines(sel.Report()) {
				fmt.Println("   ", line)
			}
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
