// Fleet fault tolerance: run the Two-Phase-RP kernel across four managed
// simulated K40s while a health-event script kills one device mid-step and
// degrades another, and show the dynamic scheduler absorbing both — bands
// lost to the failure are retried on survivors, the degraded device is
// given less work, and the step still completes with the same potentials.
package main

import (
	"fmt"
	"log"

	"beamdyn"
	"beamdyn/internal/fleet"
	"beamdyn/internal/gpusim"
)

func main() {
	cfg := beamdyn.DefaultConfig()
	cfg.Beam.NumParticles = 20000
	cfg.NX, cfg.NY = 32, 32

	// One device fails during its second band of step 11; another runs 3x
	// slow from step 10 until it recovers at step 12. (Warm-up fills the
	// retardation history through step 8, so the post-warm-up steps this
	// example advances are 9-12.)
	const script = "fail:dev=1,step=11,after=2;slow:dev=2,step=10,factor=3,until=12"
	events, err := fleet.ParseEvents(script)
	if err != nil {
		log.Fatal(err)
	}

	devs := make([]*gpusim.Device, 4)
	for d := range devs {
		devs[d] = beamdyn.NewDevice(beamdyn.KeplerK40())
		devs[d].SetLabel(fmt.Sprintf("dev%d", d))
	}
	mgr := fleet.NewInjectable(devs, events)
	fl := fleet.New(fleet.Config{
		Manager: mgr,
		MakeKernel: func(id int, dev *gpusim.Device) beamdyn.Algorithm {
			return beamdyn.NewKernelOn(beamdyn.TwoPhaseRP, dev)
		},
		Seed: 1,
	})

	sim := beamdyn.New(cfg)
	sim.Algo = fl
	sim.Warmup()

	fmt.Printf("injected events: %s\n\n", script)
	fmt.Printf("%5s %12s %6s %7s %8s  %s\n",
		"step", "gpu time", "bands", "stolen", "retried", "device states")
	for i := 0; i < 4; i++ {
		step := sim.Advance()
		st := fl.LastStats()
		states := ""
		for d := 0; d < mgr.NumDevices(); d++ {
			states += fmt.Sprintf("%s=%s ", mgr.Device(d).Label(), mgr.State(d))
		}
		fmt.Printf("%5d %12.4g %6d %7d %8d  %s\n",
			step, sim.Last.Metrics.Time, st.Bands, st.Stolen, st.Retried, states)
	}

	fmt.Println("\nstate transitions:")
	for _, tr := range mgr.Transitions() {
		fmt.Printf("  step %3d: dev%d %s -> %s (%s)\n",
			tr.Step, tr.Device, tr.From, tr.To, tr.Reason)
	}
}
