// LCLS-bend validation scenario (the paper's Figure 2 setting): a rigid
// Gaussian bunch on the LCLS bend, with the collective force computed from
// a Monte-Carlo-sampled bunch compared against the continuum (noiseless)
// reference along the bunch axis.
package main

import (
	"fmt"
	"math"

	"beamdyn"
)

func main() {
	cfg := beamdyn.DefaultConfig()
	cfg.Lattice = beamdyn.LCLSBend()
	cfg.Beam.NumParticles = 100000
	cfg.NX, cfg.NY = 64, 64

	// The sampled pipeline: deposit N particles, compute retarded
	// potentials, interpolate self-forces.
	sampled := beamdyn.New(cfg)

	// The continuum pipeline is the exact (N -> infinity) reference, the
	// role played by the analytic 1-D rigid-bunch solution in the paper.
	ccfg := cfg
	ccfg.Continuum = true
	reference := beamdyn.New(ccfg)

	for _, sim := range []*beamdyn.Simulation{sampled, reference} {
		sim.Warmup()
		sim.Advance()
	}

	fmt.Println("longitudinal collective force along the bunch axis")
	fmt.Printf("%12s %14s %14s %10s\n", "y/sigma", "computed", "reference", "rel.err")
	scx, scy := sampled.Center()
	rcx, rcy := reference.Center()
	var peak float64
	for i := -30; i <= 30; i += 2 {
		dy := float64(i) / 10 * cfg.Beam.SigmaY
		if f := math.Abs(reference.ForceAt(rcx, rcy+dy).AY); f > peak {
			peak = f
		}
	}
	var worst float64
	for i := -30; i <= 30; i += 2 {
		dy := float64(i) / 10 * cfg.Beam.SigmaY
		got := sampled.ForceAt(scx, scy+dy).AY
		want := reference.ForceAt(rcx, rcy+dy).AY
		rel := math.Abs(got-want) / peak
		if rel > worst {
			worst = rel
		}
		fmt.Printf("%12.1f %14.5g %14.5g %9.2f%%\n", float64(i)/10, got, want, 100*rel)
	}
	fmt.Printf("\nworst deviation: %.2f%% of the force peak (Monte-Carlo noise at N=%d)\n",
		100*worst, cfg.Beam.NumParticles)
}
