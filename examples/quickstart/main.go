// Quickstart: run a small beam-dynamics simulation with the paper's
// Predictive-RP kernel and print the simulated-GPU profiler metrics of
// each compute-potentials step.
package main

import (
	"fmt"

	"beamdyn"
)

func main() {
	// The default configuration is the paper's baseline: a 1 nC Gaussian
	// bunch, 1e5 macro-particles, 64x64 moment grid, rigid-bunch mode.
	// Shrink it so the quickstart finishes in seconds.
	cfg := beamdyn.DefaultConfig()
	cfg.Beam.NumParticles = 20000
	cfg.NX, cfg.NY = 48, 48

	sim := beamdyn.New(cfg)
	sim.Algo = beamdyn.NewKernel(beamdyn.PredictiveRP)

	// Warm-up fills the retardation history: the rp-integral at step k
	// reads moment grids from steps k-kappa .. k, so the first few steps
	// only deposit.
	sim.Warmup()

	for i := 0; i < 4; i++ {
		sim.Advance()
		m := sim.Last.Metrics
		fmt.Printf("step %d: %s\n", sim.Step-1, m)
		fmt.Printf("        fallback panels: %d, host overhead: %.3fs\n",
			sim.Last.FallbackEntries, sim.Last.Host.Overhead())
	}

	// The potential field of the last step is available for diagnostics.
	fmt.Printf("potential peak: %.4g (model units) on a %dx%d grid\n",
		sim.Potential.MaxAbs(0), sim.Potential.NX, sim.Potential.NY)
}
