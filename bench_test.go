// Benchmarks regenerating the paper's tables and figures. One benchmark
// per table/figure (plus the DESIGN.md ablations); custom metrics report
// the simulated-GPU quantities next to the host wall time:
//
//	simGflops    achieved double-precision throughput on the simulated K40
//	simAI        arithmetic intensity (flops / DRAM byte)
//	simWEE%      warp execution efficiency
//	simGLE%      global load efficiency
//	simL1%       L1 hit rate
//	simSec/step  simulated kernel seconds per compute-potentials step
//
// Run with: go test -bench=. -benchmem
package beamdyn

import (
	"testing"

	"beamdyn/internal/experiments"
	"beamdyn/internal/gpusim"
	"beamdyn/internal/kernels"
)

// benchConfig is the Table I/II scenario scaled to benchmark-friendly
// sizes: the shapes (kernel ordering, efficiency gaps) match the full
// runs archived in EXPERIMENTS.md.
func benchConfig(n, nx int) Config {
	cfg := DefaultConfig()
	cfg.Beam.NumParticles = n
	cfg.NX, cfg.NY = nx, nx
	return cfg
}

// benchKernelStep measures steady-state compute-potentials steps of one
// kernel (history warm, cross-step state trained).
func benchKernelStep(b *testing.B, cfg Config, k Kernel) {
	sim := New(cfg)
	sim.Algo = NewKernel(k)
	sim.Warmup()
	sim.Advance() // train/warm cross-step state
	var m Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance()
		m = sim.Last.Metrics
	}
	b.StopTimer()
	reportSim(b, m)
}

func reportSim(b *testing.B, m Metrics) {
	b.ReportMetric(m.Gflops(), "simGflops")
	b.ReportMetric(m.ArithmeticIntensity(), "simAI")
	b.ReportMetric(100*m.WarpExecutionEfficiency(), "simWEE%")
	b.ReportMetric(100*m.GlobalLoadEfficiency(), "simGLE%")
	b.ReportMetric(100*m.L1HitRate(), "simL1%")
	b.ReportMetric(m.Time, "simSec/step")
}

// BenchmarkTable1 regenerates Table I: per-kernel profiler metrics across
// grid resolutions at N = 1e5 (scaled to N = 2e4 and grids 32/64 for
// benchmark runtime; run cmd/benchtables -table 1 -scale full for the
// paper-sized table).
func BenchmarkTable1(b *testing.B) {
	for _, nx := range []int{32, 64} {
		for _, k := range []Kernel{TwoPhaseRP, HeuristicRP, PredictiveRP} {
			b.Run(benchName(k, nx), func(b *testing.B) {
				benchKernelStep(b, benchConfig(20000, nx), k)
			})
		}
	}
}

func benchName(k Kernel, nx int) string {
	return k.String() + "/grid=" + itoa(nx)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkTable2 regenerates Table II's timing comparison: a full
// simulation step (deposit + potentials + forces + push) per kernel and
// configuration.
func BenchmarkTable2(b *testing.B) {
	for _, n := range []int{20000, 100000} {
		for _, k := range []Kernel{HeuristicRP, PredictiveRP} {
			b.Run(k.String()+"/n="+itoa(n), func(b *testing.B) {
				benchKernelStep(b, benchConfig(n, 48), k)
			})
		}
	}
}

// BenchmarkFig2Validation regenerates the Figure 2 validation pipeline:
// sampled-vs-continuum force comparison on the LCLS-bend scenario.
func BenchmarkFig2Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2(experiments.Quick, uint64(i+1))
		if res.MaxRelErrLong > 0.5 {
			b.Fatalf("validation failed: %g", res.MaxRelErrLong)
		}
	}
}

// BenchmarkFig3Convergence regenerates one Figure 3 sweep (MSE vs
// particles per cell, with its 1/N fit).
func BenchmarkFig3Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(experiments.Quick, uint64(i+1))
		if res.Slope > 0 {
			b.Fatalf("MSE not converging: slope %g", res.Slope)
		}
	}
}

// BenchmarkFig4Roofline regenerates the Figure 4 roofline with all three
// kernels measured on the simulated K40.
func BenchmarkFig4Roofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4(experiments.Quick, 1)
		if len(res.Model.Points) != 3 {
			b.Fatal("missing kernel points")
		}
	}
}

// benchPredictiveVariant measures a Predictive-RP variant's steady-state
// step for the ablation benchmarks.
func benchPredictiveVariant(b *testing.B, mod func(*kernels.Predictive)) {
	cfg := benchConfig(20000, 48)
	sim := New(cfg)
	pr := kernels.NewPredictive(gpusim.New(gpusim.KeplerK40()))
	mod(pr)
	sim.Algo = pr
	sim.Warmup()
	sim.Advance()
	var m Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance()
		m = sim.Last.Metrics
	}
	b.StopTimer()
	reportSim(b, m)
}

// BenchmarkAblationPredictor compares the kNN predictor against linear
// regression (paper Section III.B.1).
func BenchmarkAblationPredictor(b *testing.B) {
	b.Run("knn4", func(b *testing.B) { benchPredictiveVariant(b, func(p *kernels.Predictive) {}) })
	b.Run("knn1", func(b *testing.B) {
		benchPredictiveVariant(b, func(p *kernels.Predictive) { p.Pred = kernels.NewKNNPredictor(1) })
	})
	b.Run("linreg", func(b *testing.B) {
		benchPredictiveVariant(b, func(p *kernels.Predictive) { p.Pred = kernels.NewLinregPredictor() })
	})
}

// BenchmarkAblationPartition compares the forecast-to-partition transforms
// of Section III.C.2.
func BenchmarkAblationPartition(b *testing.B) {
	b.Run("uniform", func(b *testing.B) {
		benchPredictiveVariant(b, func(p *kernels.Predictive) { p.Mode = kernels.UniformPartition })
	})
	b.Run("adaptive", func(b *testing.B) {
		benchPredictiveVariant(b, func(p *kernels.Predictive) { p.Mode = kernels.AdaptivePartition })
	})
}

// BenchmarkAblationClustering compares RP-CLUSTERING strategies (pattern
// segments vs k-means vs spatial tiles vs none).
func BenchmarkAblationClustering(b *testing.B) {
	modes := map[string]kernels.ClusterMode{
		"segments": kernels.ClusterByPattern,
		"kmeans":   kernels.ClusterKMeans,
		"spatial":  kernels.ClusterSpatial,
		"none":     kernels.ClusterNone,
	}
	for name, mode := range modes {
		mode := mode
		b.Run(name, func(b *testing.B) {
			benchPredictiveVariant(b, func(p *kernels.Predictive) { p.Clustering = mode })
		})
	}
}

// BenchmarkAblationClusterCount sweeps the cluster (segment) capacity
// around the paper's m = max(NX, NY).
func BenchmarkAblationClusterCount(b *testing.B) {
	for _, cap := range []int{32, 64, 128} {
		cap := cap
		b.Run("cap="+itoa(cap), func(b *testing.B) {
			benchPredictiveVariant(b, func(p *kernels.Predictive) { p.SegmentCap = cap })
		})
	}
}

// BenchmarkReferenceSolver measures the sequential host reference solver,
// the accuracy baseline for all kernels.
func BenchmarkReferenceSolver(b *testing.B) {
	sim := New(benchConfig(20000, 32))
	sim.Warmup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance()
	}
}
