module beamdyn

go 1.22
