// Package beamdyn is a pure-Go reproduction of "A Machine Learning
// Approach for Efficient Parallel Simulation of Beam Dynamics on GPUs"
// (Arumugam et al., ICPP 2017).
//
// The library simulates 2-D charged-particle beam dynamics with
// high-fidelity retarded-potential collective effects (the paper's
// four-step loop: deposit, compute potentials, self-forces, push) and
// reproduces the paper's GPU study on a built-in trace-driven SIMT GPU
// simulator standing in for the NVIDIA Tesla K40: warp divergence,
// memory coalescing and a two-level cache hierarchy are modelled, so the
// three compared kernels — Two-Phase-RP [9], Heuristic-RP [10] and this
// paper's machine-learning Predictive-RP (Algorithm 1) — exhibit the
// profiler behaviour the paper reports.
//
// Quick start:
//
//	cfg := beamdyn.DefaultConfig()
//	sim := beamdyn.New(cfg)
//	sim.Algo = beamdyn.NewKernel(beamdyn.PredictiveRP)
//	sim.Warmup()
//	sim.Advance()
//	fmt.Println(sim.Last.Metrics)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced tables and figures.
package beamdyn

import (
	"fmt"
	"io"

	"beamdyn/internal/core"
	"beamdyn/internal/experiments"
	"beamdyn/internal/fleet"
	"beamdyn/internal/gpusim"
	"beamdyn/internal/kernels"
	"beamdyn/internal/obs"
	"beamdyn/internal/phys"
	"beamdyn/internal/roofline"
)

// Config describes a simulation run: beam, lattice, grid resolution,
// retardation depth and tolerance.
type Config = core.Config

// Simulation is a running beam-dynamics simulation (the four-step loop of
// the paper's Figure 1).
type Simulation = core.Simulation

// Beam and Lattice describe the physical scenario.
type (
	// Beam holds the bunch parameters (N, Q, sigmas, energy).
	Beam = phys.Beam
	// Lattice holds the bending-magnet parameters.
	Lattice = phys.Lattice
)

// Algorithm is a compute-retarded-potentials kernel running on the
// simulated GPU.
type Algorithm = kernels.Algorithm

// Metrics holds simulated-GPU profiler counters (warp execution
// efficiency, global load efficiency, cache hit rates, arithmetic
// intensity, Gflop/s).
type Metrics = gpusim.Metrics

// StepResult is the outcome of one compute-potentials step executed by a
// kernel.
type StepResult = kernels.StepResult

// Device is the simulated GPU; DeviceConfig its hardware description.
type (
	// Device is a simulated GPU.
	Device = gpusim.Device
	// DeviceConfig describes simulated-GPU hardware.
	DeviceConfig = gpusim.Config
)

// Kernel selects one of the paper's three parallel algorithms.
type Kernel int

// The three kernels the paper compares, in historical order.
const (
	// TwoPhaseRP is the globally adaptive parallel quadrature of [9].
	TwoPhaseRP Kernel = iota
	// HeuristicRP is the cache-aware heuristic algorithm of [10], the
	// fastest prior method.
	HeuristicRP
	// PredictiveRP is this paper's machine-learning algorithm
	// (Algorithm 1).
	PredictiveRP
)

// String returns the kernel's paper name.
func (k Kernel) String() string {
	switch k {
	case TwoPhaseRP:
		return "Two-Phase-RP"
	case HeuristicRP:
		return "Heuristic-RP"
	case PredictiveRP:
		return "Predictive-RP"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// KeplerK40 returns the simulated-hardware description of the paper's
// NVIDIA Tesla K40.
func KeplerK40() DeviceConfig { return gpusim.KeplerK40() }

// NewDevice creates a simulated GPU.
func NewDevice(cfg DeviceConfig) *Device { return gpusim.New(cfg) }

// NewKernel constructs the selected kernel on a fresh simulated K40.
func NewKernel(k Kernel) Algorithm { return NewKernelOn(k, NewDevice(KeplerK40())) }

// NewKernelOn constructs the selected kernel on an existing device.
func NewKernelOn(k Kernel, dev *Device) Algorithm {
	switch k {
	case TwoPhaseRP:
		return kernels.NewTwoPhase(dev)
	case HeuristicRP:
		return kernels.NewHeuristic(dev)
	case PredictiveRP:
		return kernels.NewPredictive(dev)
	}
	panic(fmt.Sprintf("beamdyn: unknown kernel %v", k))
}

// NewPredictive constructs the Predictive-RP kernel with access to all its
// tuning knobs (prediction model, partition transform, clustering mode).
func NewPredictive(dev *Device) *kernels.Predictive { return kernels.NewPredictive(dev) }

// PascalP100 returns the simulated-hardware description of a Tesla P100,
// for cross-generation studies.
func PascalP100() DeviceConfig { return gpusim.PascalP100() }

// NewMultiGPU runs the selected kernel data-parallel across several
// simulated devices (strong scaling over grid-row bands).
func NewMultiGPU(k Kernel, devices int) Algorithm {
	return kernels.NewMultiGPU(devices, func(int) kernels.Algorithm {
		return NewKernel(k)
	})
}

// NewMultiGPUOn is NewMultiGPU with caller-supplied devices: mkDev is
// invoked once per device index, so profilers and telemetry recorders can
// be attached to each device before its kernel is built.
func NewMultiGPUOn(k Kernel, devices int, mkDev func(d int) *Device) Algorithm {
	return kernels.NewMultiGPU(devices, func(d int) kernels.Algorithm {
		return NewKernelOn(k, mkDev(d))
	})
}

// NewFleet runs the selected kernel across a managed device fleet with
// dynamic, cost-predicted band scheduling (see internal/fleet): the grid
// is over-decomposed into more row-bands than devices, bands are placed
// by predicted cost, idle devices steal work, and bands lost to mid-step
// device failures are retried on survivors. The seed drives every
// stochastic scheduler choice, keeping runs reproducible.
func NewFleet(k Kernel, devices int, seed uint64) Algorithm {
	devs := make([]*Device, devices)
	for d := range devs {
		devs[d] = NewDevice(KeplerK40())
		devs[d].SetLabel(fmt.Sprintf("dev%d", d))
	}
	return fleet.New(fleet.Config{
		Manager: fleet.NewFixed(devs),
		MakeKernel: func(id int, dev *Device) kernels.Algorithm {
			return NewKernelOn(k, dev)
		},
		Seed: seed,
	})
}

// Observer is the unified telemetry layer: a span tracer over the
// four-step loop and the kernels' predict/verify/fallback sub-phases, a
// metrics registry, and a predictor-quality monitor. Assign one to
// Simulation.Obs; a nil observer disables all instrumentation at
// near-zero cost.
type Observer = obs.Observer

// NewObserver returns a telemetry layer with a live metrics registry and
// predictor monitor; attach a trace sink via Observer.Trace.
func NewObserver() *Observer { return obs.New() }

// New builds a simulation and samples the initial bunch. The compute-
// potentials stage runs on the sequential host reference until sim.Algo is
// set to a kernel.
func New(cfg Config) *Simulation { return core.New(cfg) }

// LoadCheckpoint restores a simulation saved with (*Simulation).Save. The
// restored simulation has no kernel attached; set Algo before advancing if
// a simulated-GPU kernel is wanted.
func LoadCheckpoint(r io.Reader) (*Simulation, error) { return core.Load(r) }

// DefaultConfig returns the paper's baseline scenario: a 1 nC Gaussian
// bunch with LCLS-bend-like parameters, 1e5 macro-particles on a 64x64
// grid, rigid-bunch mode.
func DefaultConfig() Config {
	return Config{
		Beam: Beam{
			NumParticles: 100000,
			TotalCharge:  1e-9,
			SigmaX:       20e-6,
			SigmaY:       50e-6,
			Energy:       4.3e9,
		},
		Lattice: phys.LCLSBend(),
		NX:      64, NY: 64,
		Kappa: 6,
		Tol:   1e-8,
		Seed:  1,
		Rigid: true,
	}
}

// LCLSBend returns the validation lattice of the paper's Figure 2.
func LCLSBend() Lattice { return phys.LCLSBend() }

// Roofline builds the roofline model (the paper's Figure 4 chart) for a
// device configuration; add measured kernels with AddKernel.
func Roofline(cfg DeviceConfig) *roofline.Model { return roofline.New(cfg) }

// ExperimentScale selects experiment sizing for the table/figure
// regenerators.
type ExperimentScale = experiments.Scale

// Experiment scales.
const (
	// ScaleFull runs the paper's configurations.
	ScaleFull = experiments.Full
	// ScaleMedium caps grids at 128x128.
	ScaleMedium = experiments.Medium
	// ScaleQuick is CI-sized.
	ScaleQuick = experiments.Quick
)
